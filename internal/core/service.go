package core

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"cofs/internal/disk"
	"cofs/internal/lock"
	"cofs/internal/mdb"
	"cofs/internal/netsim"
	"cofs/internal/params"
	"cofs/internal/rpc"
	"cofs/internal/sim"
	"cofs/internal/store"
	"cofs/internal/vfs"

	// Register the non-default store backends a deployment may name.
	_ "cofs/internal/mdls"
)

// RootID is the virtual root directory's file id.
const RootID vfs.Ino = 1

// inodeRow is the metadata the service keeps per object (type, owner,
// permissions, times — section III-C). For regular files Size/Mtime are
// updated on writer close (close-to-open consistency); the service holds
// no block or placement information beyond the opaque mapping table.
type inodeRow struct {
	ID     vfs.Ino
	Type   vfs.FileType
	Mode   uint32
	UID    uint32
	GID    uint32
	Nlink  int
	Size   int64
	Atime  time.Duration
	Mtime  time.Duration
	Ctime  time.Duration
	Target string // symlink
}

func (r inodeRow) attr() vfs.Attr {
	return vfs.Attr{
		Ino: r.ID, Type: r.Type, Mode: r.Mode, UID: r.UID, GID: r.GID,
		Nlink: r.Nlink, Size: r.Size, Atime: r.Atime, Mtime: r.Mtime, Ctime: r.Ctime,
	}
}

// dentryKey identifies one name in one virtual directory.
type dentryKey struct {
	Parent vfs.Ino
	Name   string
}

// dentryRow is a directory entry. It repeats the key fields so the
// parent can drive a Mnesia-style secondary index: directory listings
// and emptiness checks hit the index instead of scanning the table. The
// child's type is denormalized into the entry (as on-disk file systems
// do in dirents) so the owning shard can type-check renames and removes
// without a cross-shard read; an object's type never changes.
type dentryRow struct {
	Parent vfs.Ino
	Name   string
	Child  vfs.Ino
	Type   vfs.FileType
}

// parentIndexKey renders the index bucket for a directory.
func parentIndexKey(dir vfs.Ino) string { return strconv.FormatUint(uint64(dir), 10) }

// ServiceStats aggregates service-side counters.
type ServiceStats struct {
	Requests int64
	Creates  int64
	Lookups  int64
	Getattrs int64
	Updates  int64
	Removes  int64
	// PeerCalls counts shard-to-shard RPCs this shard coordinated
	// (always 0 on a single-shard deployment).
	PeerCalls int64
	// Revocations counts client lease recalls this shard issued
	// (always 0 unless COFSParams.AttrLease is set).
	Revocations int64
}

// Service is one COFS metadata shard: it owns the slice of the virtual
// hierarchy its cluster's shard map assigns it, in Mnesia-style tables
// backed by a local disk. A single-shard cluster is exactly the paper's
// centralized metadata service.
type Service struct {
	net  *netsim.Net
	host *netsim.Host
	cfg  params.COFSParams

	// cluster is the plane this shard belongs to; shardID its index.
	cluster *MDSCluster
	shardID int

	Disk *disk.Disk
	DB   *mdb.DB

	inodes   *mdb.Table[vfs.Ino, inodeRow]
	dentries *mdb.Table[dentryKey, dentryRow]
	mappings *mdb.Table[vfs.Ino, string]

	// nextID allocates from this shard's stride: allocBase is the
	// smallest id of the stride and allocStride the step, so placement-
	// by-id is stable across restarts and never needs a lookup table.
	// At deploy time the stride is (shardID, N); a reshard re-points it
	// at the target placement — newborn ids above the migration's split
	// are born on the shard that will own them — and zeroes allocStride
	// on a shard the migration drains (it then delegates the inode half
	// of creates to an owning shard, createRemote).
	nextID      vfs.Ino
	allocBase   vfs.Ino
	allocStride vfs.Ino

	// leases tracks which client session holds a lease on which of this
	// shard's rows (nil unless COFSParams.AttrLease is set; see
	// lease.go).
	leases *leaseTable
	// peers are this shard's channels to the other shards of the plane
	// (two-phase protocol traffic), indexed by shard id; nil for self.
	peers []*rpc.Conn

	Stats ServiceStats
}

// newShard creates metadata shard shardID of cluster c on host, with its
// database on a freshly attached local disk (the paper used a 25 GB ext3
// volume per service node). Shard 0 bootstraps the root directory.
func newShard(net *netsim.Net, host *netsim.Host, cfg params.Config, c *MDSCluster, shardID int) *Service {
	env := net.Env()
	diskName := "cofs-mdb"
	if shardID > 0 {
		diskName = fmt.Sprintf("cofs-mdb%d", shardID)
	}
	d := disk.New(env, diskName, cfg.Disk)
	db, err := store.Open(cfg.COFS.MetadataStore, env, d, store.Options{
		OpTime:        cfg.COFS.DBOpTime,
		FlushInterval: cfg.COFS.LogFlushInterval,
	})
	if err != nil {
		panic(err) // deployment-time misconfiguration: fail fast
	}
	if cfg.COFS.StandbyReads {
		// Before any row (the root bootstrap included) exists: a row
		// born untracked would carry no last-commit stamp, and the
		// standby freshness check would read its absence as "never
		// committed" (see mdb.TrackStamps).
		db.TrackStamps()
	}
	base := firstID(shardID, c.lockShards)
	stride := vfs.Ino(c.lockShards)
	if stride < 1 {
		stride = 1
	}
	s := &Service{
		net:         net,
		host:        host,
		cfg:         cfg.COFS,
		cluster:     c,
		shardID:     shardID,
		Disk:        d,
		DB:          db,
		nextID:      base,
		allocBase:   base,
		allocStride: stride,
		leases:      newLeaseTable(cfg.COFS.AttrLease),
	}
	s.inodes = mdb.NewTable[vfs.Ino, inodeRow](db, "inode", mdb.DiscCopies)
	s.dentries = mdb.NewTable[dentryKey, dentryRow](db, "dentry", mdb.DiscCopies)
	s.dentries.AddIndex("parent", func(r dentryRow) string { return parentIndexKey(r.Parent) })
	s.mappings = mdb.NewTable[vfs.Ino, string](db, "mapping", mdb.DiscCopies)

	if shardID == 0 {
		// Bootstrap the root directory outside simulated time.
		s.inodes.Bootstrap(RootID, inodeRow{ID: RootID, Type: vfs.TypeDir, Mode: 0777, Nlink: 2})
	}
	return s
}

// firstID is the smallest allocatable id of a shard's stride (skipping
// the root, which shard 0 owns by bootstrap).
func firstID(shardID, shards int) vfs.Ino {
	if shards <= 1 {
		return RootID + 1
	}
	if shardID == 0 {
		return RootID + vfs.Ino(shards)
	}
	return RootID + vfs.Ino(shardID)
}

// sharded reports whether cross-shard coordination can be needed.
func (s *Service) sharded() bool { return s.cluster != nil && len(s.cluster.shards) > 1 }

// owns reports whether this shard holds ino's inode row at the current
// shard-map epoch.
func (s *Service) owns(ino vfs.Ino) bool { return !s.sharded() || s.cluster.Of(ino) == s.shardID }

// claim verifies this shard owns the routing row of a request at the
// current epoch. A request routed by a map version that raced a live
// migration is bounced with ErrWrongEpoch — the cheap redirect the
// routing layer turns into a map refetch and retry. Free (and always
// nil) on a plane that never reshards.
func (s *Service) claim(ino vfs.Ino) error {
	if s.owns(ino) {
		return nil
	}
	s.cluster.rstats.Redirects++
	return ErrWrongEpoch
}

// peer returns the shard owning ino at the current epoch.
func (s *Service) peer(ino vfs.Ino) *Service { return s.cluster.shard(ino) }

// canAlloc reports whether this shard may allocate new ids (false on a
// shard a live shrink is draining).
func (s *Service) canAlloc() bool { return s.allocStride > 0 }

// allocID takes the next id from this shard's stride.
func (s *Service) allocID() vfs.Ino {
	id := s.nextID
	s.nextID += s.allocStride
	return id
}

// setAllocStride re-points the shard's allocator (Reshard): the next id
// is the smallest id of stride class (class, step) strictly above
// floor, so newborn ids never collide with anything allocated before
// the migration began. class == -1 disables allocation (a drained
// shard).
func (s *Service) setAllocStride(class, step int, floor vfs.Ino) {
	if class < 0 {
		s.allocStride = 0
		return
	}
	base := firstID(class, step) // smallest allocatable id with (id-1) mod step == class
	next := base
	if floor >= base {
		next = base + ((floor-base)/vfs.Ino(step)+1)*vfs.Ino(step)
	}
	s.allocBase = base
	s.allocStride = vfs.Ino(step)
	s.nextID = next
}

// Host returns the service node.
func (s *Service) Host() *netsim.Host { return s.host }

// call performs one client->service RPC through the session's channel
// to this shard, charging the full (transaction dispatch) service CPU.
func call[T any](p *sim.Proc, s *Service, sess *Session, op rpc.Op, req, resp int64, fn func(p *sim.Proc) T) T {
	return callCPU(p, s, sess, op, req, resp, s.cfg.ServiceCPUPerOp, fn)
}

// callRead is the dirty-read fast path: Mnesia dirty reads skip the
// transaction machinery, so the dispatch charge is much smaller.
func callRead[T any](p *sim.Proc, s *Service, sess *Session, op rpc.Op, req, resp int64, fn func(p *sim.Proc) T) T {
	return callCPU(p, s, sess, op, req, resp, s.cfg.ServiceCPUPerOp*3/4, fn)
}

func callCPU[T any](p *sim.Proc, s *Service, sess *Session, op rpc.Op, req, resp int64, cpu time.Duration, fn func(p *sim.Proc) T) T {
	s.Stats.Requests++
	var out T
	sess.conns[s.shardID].Call(p, rpc.Request{
		Op: op, ReqBytes: req, CPU: cpu, RespFixed: resp,
		Run: func(p *sim.Proc) { out = fn(p) },
	})
	return out
}

// callDyn is callCPU with the response size computed from the handler's
// result (directory listings).
func callDyn[T any](p *sim.Proc, s *Service, sess *Session, op rpc.Op, req int64, cpu time.Duration, fn func(p *sim.Proc) T, resp func(T) int64) T {
	s.Stats.Requests++
	var out T
	sess.conns[s.shardID].Call(p, rpc.Request{
		Op: op, ReqBytes: req, CPU: cpu,
		Run:       func(p *sim.Proc) { out = fn(p) },
		RespBytes: func() int64 { return resp(out) },
	})
	return out
}

// peerCall performs one shard-to-shard RPC of the cross-shard protocol
// over the coordinator's channel to the participant, charging transfer
// costs plus the participant's dispatch CPU. The coordinator's
// scheduler thread is released while the remote call is in flight (an
// Erlang-style non-blocking server), so opposed cross-shard operations
// cannot deadlock the two worker pools. When the participant is the
// coordinator itself the body runs inline: no RPC, no extra dispatch
// charge.
func peerCall[T any](p *sim.Proc, from, to *Service, req, resp int64, cpu time.Duration, fn func(p *sim.Proc) T) T {
	if from == to {
		return fn(p)
	}
	from.Stats.PeerCalls++
	from.host.CPU.Release(p)
	var out T
	from.peers[to.shardID].Call(p, rpc.Request{
		Op: rpc.OpPeer, ReqBytes: req, CPU: cpu, RespFixed: resp,
		Run: func(p *sim.Proc) { out = fn(p) },
	})
	from.host.CPU.Acquire(p)
	return out
}

type attrReply struct {
	attr vfs.Attr
	err  error
}

// missErr maps a missing row to the right error at the current epoch:
// when the row's group is no longer owned here it did not die — it
// migrated mid-request — and the caller must be redirected instead of
// told the row is gone (the "no client ever observes a missing row"
// half of the resharding contract). Otherwise fallback stands.
func (s *Service) missErr(ino vfs.Ino, fallback error) error {
	if !s.owns(ino) {
		s.cluster.rstats.Redirects++
		return ErrWrongEpoch
	}
	return fallback
}

// Lookup resolves (parent, name) and returns the child's attributes.
// With leases enabled a successful resolution grants the caller a
// dentry + attribute lease, and a clean miss grants a negative dentry.
func (s *Service) Lookup(p *sim.Proc, sess *Session, parent vfs.Ino, name string) (vfs.Attr, error) {
	s.Stats.Lookups++
	r := callRead(p, s, sess, rpc.OpLookup, 128, 192, func(p *sim.Proc) attrReply {
		if err := s.claim(parent); err != nil {
			return attrReply{err: err}
		}
		de, ok := mdb.DirtyGet(p, s.dentries, dentryKey{Parent: parent, Name: name})
		if !ok {
			// The parent's inode is always co-located with its dentries
			// (both place by the parent's id), so this read is local —
			// unless the parent's group migrated between the claim above
			// and this read, in which case the miss means "moved", not
			// "absent", and the client is redirected.
			if err := s.missErr(parent, nil); err != nil {
				return attrReply{err: err}
			}
			din, dirOK := mdb.DirtyGet(p, s.inodes, parent)
			if dirOK && din.Type != vfs.TypeDir {
				return attrReply{err: vfs.ErrNotDir}
			}
			if dirOK {
				s.grantNegative(p, sess, parent, name)
			}
			return attrReply{err: vfs.ErrNotExist}
		}
		if !s.owns(de.Child) {
			// The child's inode lives on another shard: one extra hop
			// (a directory placed elsewhere, or a file renamed in).
			r := s.peerGetattr(p, sess, de.Child)
			if r.err == nil {
				s.grantDentry(p, sess, parent, name, de.Child)
			}
			return r
		}
		row, ok := mdb.DirtyGet(p, s.inodes, de.Child)
		if !ok {
			if !s.owns(de.Child) {
				// The child's group migrated mid-lookup: finish at its
				// new owner instead of reporting a missing row.
				r := s.peerGetattr(p, sess, de.Child)
				if r.err == nil {
					s.grantDentry(p, sess, parent, name, de.Child)
				}
				return r
			}
			return attrReply{err: vfs.ErrNotExist}
		}
		s.grantDentry(p, sess, parent, name, de.Child)
		s.grantAttr(p, sess, de.Child, "")
		return attrReply{attr: row.attr()}
	})
	return r.attr, r.err
}

// Getattr returns the attributes of id.
func (s *Service) Getattr(p *sim.Proc, sess *Session, id vfs.Ino) (vfs.Attr, error) {
	s.Stats.Getattrs++
	r := callRead(p, s, sess, rpc.OpGetattr, 96, 192, func(p *sim.Proc) attrReply {
		if err := s.claim(id); err != nil {
			return attrReply{err: err}
		}
		row, ok := mdb.DirtyGet(p, s.inodes, id)
		if !ok {
			return attrReply{err: s.missErr(id, vfs.ErrNotExist)}
		}
		s.grantAttr(p, sess, id, "")
		return attrReply{attr: row.attr()}
	})
	return r.attr, r.err
}

// Setattr updates attributes of id (chmod/chown/utime/truncate record).
func (s *Service) Setattr(p *sim.Proc, sess *Session, ctx vfs.Ctx, id vfs.Ino, set vfs.SetAttr) (vfs.Attr, error) {
	s.Stats.Updates++
	return s.updateRow(p, sess, rpc.OpSetattr, id, func(row *inodeRow) error {
		if set.HasMode && ctx.UID != 0 && ctx.UID != row.UID {
			return vfs.ErrPerm
		}
		// POSIX: only root may change ownership.
		if set.HasOwner && ctx.UID != 0 {
			return vfs.ErrPerm
		}
		if set.HasMode {
			row.Mode = set.Mode
		}
		if set.HasOwner {
			row.UID, row.GID = set.UID, set.GID
		}
		if set.HasSize && row.Type == vfs.TypeRegular {
			row.Size = set.Size
		}
		if set.HasTimes {
			row.Atime, row.Mtime = set.Atime, set.Mtime
		}
		row.Ctime = p.Now()
		return nil
	})
}

// updateRow applies fn to id's row in a durable transaction. On success
// other holders' attribute leases on id are recalled and the mutating
// session is granted a fresh one.
func (s *Service) updateRow(p *sim.Proc, sess *Session, op rpc.Op, id vfs.Ino, fn func(*inodeRow) error) (vfs.Attr, error) {
	r := call(p, s, sess, op, 160, 192, func(p *sim.Proc) attrReply {
		// The row's Shared lock keeps a live migration (which takes the
		// group Exclusive) from moving it out from under the update
		// transaction; free when uncontended, no-op on an unsharded
		// plane. Shared suffices: the write itself is atomic inside the
		// serialized transaction below, like the parent-row bumps of
		// Create (docs/transactions.md).
		txn := s.lockRows(p, lock.S(s.inoKey(id)))
		defer txn.release(p)
		if err := s.claim(id); err != nil {
			return attrReply{err: err}
		}
		var out attrReply
		s.DB.Transaction(p, func(tx *mdb.Tx) {
			if s.staleProtocol(txn) {
				out.err = ErrWrongEpoch
				return
			}
			row, ok := mdb.Get(tx, s.inodes, id)
			if !ok {
				out.err = s.missErr(id, vfs.ErrNotExist)
				return
			}
			if err := fn(&row); err != nil {
				out.err = err
				return
			}
			mdb.Put(tx, s.inodes, id, row)
			out.attr = row.attr()
		})
		if out.err == nil {
			s.revokeLeases(p, sess, attrLease(id))
			s.grantAttr(p, sess, id, "")
		}
		return out
	})
	return r.attr, r.err
}

type createReply struct {
	attr  vfs.Attr
	upath string
	err   error
}

// dirRow loads parent and verifies it is a directory the caller may
// modify. Runs inside a transaction.
func (s *Service) dirRow(tx *mdb.Tx, ctx vfs.Ctx, parent vfs.Ino, wantWrite bool) (inodeRow, error) {
	din, ok := mdb.Get(tx, s.inodes, parent)
	if !ok {
		return inodeRow{}, vfs.ErrNotExist
	}
	if din.Type != vfs.TypeDir {
		return inodeRow{}, vfs.ErrNotDir
	}
	bit := uint32(4)
	if wantWrite {
		bit = 2
	}
	if !canAccess(ctx, din.UID, din.GID, din.Mode, bit) {
		return inodeRow{}, vfs.ErrPerm
	}
	return din, nil
}

func canAccess(ctx vfs.Ctx, uid, gid, mode, bit uint32) bool {
	if ctx.UID == 0 {
		return true
	}
	switch {
	case ctx.UID == uid:
		return mode&(bit<<6) != 0
	case ctx.GID == gid:
		return mode&(bit<<3) != 0
	default:
		return mode&bit != 0
	}
}

// allocSite returns the shard that allocates (and therefore owns) a new
// object's inode row. Directories place by the current map's DirTarget
// (hashed over the target shard count, so a mid-migration mkdir lands
// straight in the post-migration layout). Files and symlinks allocate
// on the coordinator itself — the paper's local-commit fast path —
// unless a live shrink has drained this shard's allocator, in which
// case they fall to a deterministic owning shard of the target layout.
func (s *Service) allocSite(t vfs.FileType, parent vfs.Ino, name string) *Service {
	if t == vfs.TypeDir {
		return s.cluster.shards[s.cluster.dirTarget(parent, name)]
	}
	if s.canAlloc() {
		return s
	}
	return s.cluster.shards[s.shardID%s.cluster.Maps.Current().Target()]
}

// Create allocates a new object of the given type under parent. For
// regular files, bucket is the underlying directory chosen by the
// client's placement driver: the service composes and records the
// mapping <bucket>/f<id> inside the transaction and returns it. The
// transaction commits durably (the service's ext3-backed log,
// group-committed across clients).
func (s *Service) Create(p *sim.Proc, sess *Session, ctx vfs.Ctx, parent vfs.Ino, name string, t vfs.FileType, mode uint32, bucket, target string) (vfs.Attr, string, error) {
	s.Stats.Creates++
	// New files and symlinks allocate from this shard's stride, so the
	// whole create commits locally. New directories place by the shard
	// map's DirTarget; when that is a different shard — or when a live
	// shrink has drained this shard's allocator — the inode half of the
	// create runs at the allocating shard under the two-phase protocol.
	if s.sharded() {
		if ts := s.allocSite(t, parent, name); ts != s {
			return s.createRemote(p, sess, ctx, parent, name, t, mode, bucket, target, ts)
		}
	}
	r := call(p, s, sess, rpc.OpCreate, 256, 192, func(p *sim.Proc) createReply {
		var out createReply
		// The create commits in one local transaction, but on a sharded
		// plane it must still respect the row locks of in-flight
		// cross-shard mutations — an rmdir freezing this directory's
		// emptiness, a rename swapping this name — so it locks the same
		// footprint they would conflict on (no-op on one shard, free
		// when uncontended; see txnlock.go). The dentry it writes is
		// Exclusive; the parent's inode row only Shared — its
		// nlink/mtime bump is atomic inside the transaction below, so
		// concurrent creates of different names in this directory
		// overlap instead of serializing on the parent.
		txn := s.lockRows(p, lock.X(s.dentKey(parent, name)), lock.S(s.inoKey(parent)))
		defer txn.release(p)
		if err := s.claim(parent); err != nil {
			out.err = err
			return out
		}
		if !s.canAlloc() {
			// A shrink began while this request was in flight and
			// drained the allocator: redirect — the retry re-routes
			// through allocSite and takes the remote-create path.
			s.cluster.rstats.Redirects++
			out.err = ErrWrongEpoch
			return out
		}
		s.DB.Transaction(p, func(tx *mdb.Tx) {
			if s.staleProtocol(txn) {
				out.err = ErrWrongEpoch
				return
			}
			din, err := s.dirRow(tx, ctx, parent, true)
			if err != nil {
				out.err = err
				return
			}
			key := dentryKey{Parent: parent, Name: name}
			if _, exists := mdb.Get(tx, s.dentries, key); exists {
				out.err = vfs.ErrExist
				return
			}
			id := s.allocID()
			row := inodeRow{
				ID: id, Type: t, Mode: mode, UID: ctx.UID, GID: ctx.GID,
				Nlink: 1, Mtime: p.Now(), Ctime: p.Now(), Target: target,
			}
			if t == vfs.TypeDir {
				row.Nlink = 2
				din.Nlink++
			}
			if t == vfs.TypeSymlink {
				row.Size = int64(len(target))
			}
			din.Mtime = p.Now()
			mdb.Put(tx, s.inodes, id, row)
			mdb.Put(tx, s.dentries, key, dentryRow{Parent: parent, Name: name, Child: id, Type: t})
			mdb.Put(tx, s.inodes, parent, din)
			if bucket != "" {
				out.upath = fmt.Sprintf("%s/f%016x", bucket, uint64(id))
				mdb.Put(tx, s.mappings, id, out.upath)
			}
			out.attr = row.attr()
		})
		if out.err == nil {
			// Kill other nodes' negative dentries for the new name (and
			// their parent attributes — its mtime/nlink changed), then
			// lease the new object to its creator.
			s.revokeLeases(p, sess, dentLease(parent, name), attrLease(parent))
			s.grantDentry(p, sess, parent, name, out.attr.Ino)
			s.grantAttr(p, sess, out.attr.Ino, out.upath)
		}
		return out
	})
	return r.attr, r.upath, r.err
}

// Readlink returns a symlink's target.
func (s *Service) Readlink(p *sim.Proc, sess *Session, id vfs.Ino) (string, error) {
	type reply struct {
		target string
		err    error
	}
	r := callRead(p, s, sess, rpc.OpReadlink, 96, 256, func(p *sim.Proc) reply {
		if err := s.claim(id); err != nil {
			return reply{err: err}
		}
		row, ok := mdb.DirtyGet(p, s.inodes, id)
		if !ok {
			return reply{err: s.missErr(id, vfs.ErrNotExist)}
		}
		if row.Type != vfs.TypeSymlink {
			return reply{err: vfs.ErrInvalid}
		}
		return reply{target: row.Target}
	})
	return r.target, r.err
}

type mappingReply struct {
	attr  vfs.Attr
	upath string
	err   error
}

// OpenInfo returns the attributes and underlying mapping of a regular
// file in one round trip (used by open).
func (s *Service) OpenInfo(p *sim.Proc, sess *Session, id vfs.Ino) (vfs.Attr, string, error) {
	r := callRead(p, s, sess, rpc.OpOpenInfo, 96, 256, func(p *sim.Proc) mappingReply {
		if err := s.claim(id); err != nil {
			return mappingReply{err: err}
		}
		row, ok := mdb.DirtyGet(p, s.inodes, id)
		if !ok {
			return mappingReply{err: s.missErr(id, vfs.ErrNotExist)}
		}
		upath, _ := mdb.DirtyGet(p, s.mappings, id)
		s.grantAttr(p, sess, id, upath)
		return mappingReply{attr: row.attr(), upath: upath}
	})
	return r.attr, r.upath, r.err
}

type removeReply struct {
	upath   string
	id      vfs.Ino
	removed bool
	isDir   bool
	err     error
}

// Remove unlinks (parent, name). It returns the id of the affected
// object (so client caches can invalidate it) and, for regular files
// whose last link went away, the underlying path to delete; rmdir
// requires an empty directory.
func (s *Service) Remove(p *sim.Proc, sess *Session, ctx vfs.Ctx, parent vfs.Ino, name string, rmdir bool) (string, vfs.Ino, error) {
	s.Stats.Removes++
	if s.sharded() {
		return s.removeSharded(p, sess, ctx, parent, name, rmdir)
	}
	r := call(p, s, sess, rpc.OpRemove, 160, 128, func(p *sim.Proc) removeReply {
		var out removeReply
		// The claim is free on a plane that never grows; on one racing
		// its first grow it keeps a request dispatched down this
		// single-shard path from reporting migrated rows as missing.
		if err := s.claim(parent); err != nil {
			return removeReply{err: err}
		}
		s.DB.Transaction(p, func(tx *mdb.Tx) {
			if s.staleProtocol(nil) {
				out.err = ErrWrongEpoch
				return
			}
			din, err := s.dirRow(tx, ctx, parent, true)
			if err != nil {
				out.err = err
				return
			}
			key := dentryKey{Parent: parent, Name: name}
			de, ok := mdb.Get(tx, s.dentries, key)
			if !ok {
				out.err = vfs.ErrNotExist
				return
			}
			id := de.Child
			out.id = id
			row, rowOK := mdb.Get(tx, s.inodes, id)
			if !rowOK {
				if out.err = s.missErr(id, nil); out.err != nil {
					return
				}
			}
			if rmdir {
				if row.Type != vfs.TypeDir {
					out.err = vfs.ErrNotDir
					return
				}
				if n := len(mdb.IndexKeys(tx, s.dentries, "parent", parentIndexKey(id))); n > 0 {
					out.err = vfs.ErrNotEmpty
					return
				}
				din.Nlink--
				mdb.Delete(tx, s.inodes, id)
				mdb.Delete(tx, s.dentries, key)
				mdb.Put(tx, s.inodes, parent, din)
				out.isDir = true
				return
			}
			if row.Type == vfs.TypeDir {
				out.err = vfs.ErrIsDir
				return
			}
			mdb.Delete(tx, s.dentries, key)
			row.Nlink--
			din.Mtime = p.Now()
			mdb.Put(tx, s.inodes, parent, din)
			if row.Nlink <= 0 {
				out.upath, _ = mdb.Get(tx, s.mappings, id)
				out.removed = true
				mdb.Delete(tx, s.inodes, id)
				mdb.Delete(tx, s.mappings, id)
			} else {
				mdb.Put(tx, s.inodes, id, row)
			}
		})
		if out.err == nil {
			s.revokeLeases(p, sess, dentLease(parent, name), attrLease(out.id), attrLease(parent))
		}
		return out
	})
	return r.upath, r.id, r.err
}

// Rename moves (srcDir, srcName) to (dstDir, dstName), replacing a
// compatible target. The underlying mapping is untouched: renames never
// reach the underlying file system. It returns the id of a replaced
// target (0 if none) for client cache invalidation, plus the underlying
// path to delete when the replaced file's last link went away.
func (s *Service) Rename(p *sim.Proc, sess *Session, ctx vfs.Ctx, srcDir vfs.Ino, srcName string, dstDir vfs.Ino, dstName string) (string, vfs.Ino, error) {
	if s.sharded() {
		return s.renameSharded(p, sess, ctx, srcDir, srcName, dstDir, dstName)
	}
	r := call(p, s, sess, rpc.OpRename, 224, 128, func(p *sim.Proc) removeReply {
		var out removeReply
		mutated := false
		// See Remove above: free claims that turn migrated-row misses
		// into redirects when this single-shard path races a grow.
		if err := s.claim(srcDir); err != nil {
			return removeReply{err: err}
		}
		s.DB.Transaction(p, func(tx *mdb.Tx) {
			if s.staleProtocol(nil) {
				out.err = ErrWrongEpoch
				return
			}
			sd, err := s.dirRow(tx, ctx, srcDir, true)
			if err != nil {
				out.err = err
				return
			}
			dd, err := s.dirRow(tx, ctx, dstDir, true)
			if err != nil {
				if err == vfs.ErrNotExist {
					err = s.missErr(dstDir, err)
				}
				out.err = err
				return
			}
			srcKey := dentryKey{Parent: srcDir, Name: srcName}
			srcDe, ok := mdb.Get(tx, s.dentries, srcKey)
			if !ok {
				out.err = vfs.ErrNotExist
				return
			}
			id := srcDe.Child
			if dstName == "" || len(dstName) > vfs.MaxNameLen {
				out.err = vfs.ErrInvalid
				return
			}
			moving, movingOK := mdb.Get(tx, s.inodes, id)
			if !movingOK {
				if out.err = s.missErr(id, nil); out.err != nil {
					return
				}
			}
			dstKey := dentryKey{Parent: dstDir, Name: dstName}
			if dstDe, ok := mdb.Get(tx, s.dentries, dstKey); ok {
				existing := dstDe.Child
				if existing == id {
					// POSIX no-op: same object under both names.
					return
				}
				out.id = existing
				tgt, tgtOK := mdb.Get(tx, s.inodes, existing)
				if !tgtOK {
					if out.err = s.missErr(existing, nil); out.err != nil {
						return
					}
				}
				if tgt.Type == vfs.TypeDir {
					if moving.Type != vfs.TypeDir {
						out.err = vfs.ErrIsDir
						return
					}
					if n := len(mdb.IndexKeys(tx, s.dentries, "parent", parentIndexKey(existing))); n > 0 {
						out.err = vfs.ErrNotEmpty
						return
					}
					dd.Nlink--
					if srcDir == dstDir {
						// sd and dd are value copies of the same row and
						// only sd is written back below: mirror the
						// replaced subdirectory's link drop there too.
						sd.Nlink--
					}
					mdb.Delete(tx, s.inodes, existing)
				} else {
					if moving.Type == vfs.TypeDir {
						out.err = vfs.ErrNotDir
						return
					}
					tgt.Nlink--
					if tgt.Nlink <= 0 {
						out.upath, _ = mdb.Get(tx, s.mappings, existing)
						out.removed = true
						mdb.Delete(tx, s.inodes, existing)
						mdb.Delete(tx, s.mappings, existing)
					} else {
						mdb.Put(tx, s.inodes, existing, tgt)
					}
				}
			}
			mutated = true
			mdb.Delete(tx, s.dentries, srcKey)
			mdb.Put(tx, s.dentries, dstKey, dentryRow{Parent: dstDir, Name: dstName, Child: id, Type: moving.Type})
			if moving.Type == vfs.TypeDir && srcDir != dstDir {
				sd.Nlink--
				dd.Nlink++
			}
			sd.Mtime = p.Now()
			dd.Mtime = p.Now()
			mdb.Put(tx, s.inodes, srcDir, sd)
			if srcDir != dstDir {
				mdb.Put(tx, s.inodes, dstDir, dd)
			}
		})
		if out.err == nil && mutated {
			keys := []leaseKey{
				dentLease(srcDir, srcName), dentLease(dstDir, dstName),
				attrLease(srcDir), attrLease(dstDir),
			}
			if out.id != 0 {
				keys = append(keys, attrLease(out.id))
			}
			s.revokeLeases(p, sess, keys...)
		}
		return out
	})
	return r.upath, r.id, r.err
}

// Link adds a hard link to id at (parent, name).
func (s *Service) Link(p *sim.Proc, sess *Session, ctx vfs.Ctx, id vfs.Ino, parent vfs.Ino, name string) (vfs.Attr, error) {
	if s.sharded() && !s.owns(id) {
		return s.linkRemote(p, sess, ctx, id, parent, name)
	}
	r := call(p, s, sess, rpc.OpLink, 160, 192, func(p *sim.Proc) attrReply {
		var out attrReply
		// Same discipline as Create above: the link commits locally but
		// locks the rows cross-shard mutations would conflict on — here
		// including the target inode, Shared: the link's own nlink bump
		// is atomic inside the transaction below, and Shared already
		// excludes the Exclusive holders (a sharded remove reclaiming
		// the target, a rename replacing it) whose cross-phase gaps the
		// target row must not move under.
		txn := s.lockRows(p, lock.X(s.dentKey(parent, name)), lock.S(s.inoKey(parent)), lock.S(s.inoKey(id)))
		defer txn.release(p)
		if err := s.claim(parent); err != nil {
			out.err = err
			return out
		}
		s.DB.Transaction(p, func(tx *mdb.Tx) {
			if s.staleProtocol(txn) {
				out.err = ErrWrongEpoch
				return
			}
			din, err := s.dirRow(tx, ctx, parent, true)
			if err != nil {
				out.err = err
				return
			}
			row, ok := mdb.Get(tx, s.inodes, id)
			if !ok {
				// The target may have migrated between the client-side
				// ownership check and this body: redirect, the retry
				// re-routes through linkRemote.
				out.err = s.missErr(id, vfs.ErrNotExist)
				return
			}
			if row.Type == vfs.TypeDir {
				out.err = vfs.ErrIsDir
				return
			}
			key := dentryKey{Parent: parent, Name: name}
			if _, exists := mdb.Get(tx, s.dentries, key); exists {
				out.err = vfs.ErrExist
				return
			}
			row.Nlink++
			din.Mtime = p.Now()
			mdb.Put(tx, s.inodes, id, row)
			mdb.Put(tx, s.dentries, key, dentryRow{Parent: parent, Name: name, Child: id, Type: row.Type})
			mdb.Put(tx, s.inodes, parent, din)
			out.attr = row.attr()
		})
		if out.err == nil {
			s.revokeLeases(p, sess, dentLease(parent, name), attrLease(id), attrLease(parent))
			s.grantDentry(p, sess, parent, name, id)
			s.grantAttr(p, sess, id, "")
		}
		return out
	})
	return r.attr, r.err
}

type readdirReply struct {
	entries []vfs.DirEntry
	attrs   []vfs.Attr
	err     error
}

// ReaddirPlus lists the virtual directory and returns every entry's
// attributes in the same response (NFSv3 READDIRPLUS style): one RPC
// serves a whole `ls -l`. The client prefills its attribute cache from
// the reply (see FS.Readdir), turning the per-entry stat round trips of
// the paper's "large directory traversals" trigger into local hits. The
// listing is served from the dentry table's parent index, and the
// response transfer cost scales with the number of entries.
func (s *Service) ReaddirPlus(p *sim.Proc, sess *Session, ctx vfs.Ctx, dir vfs.Ino) ([]vfs.DirEntry, []vfs.Attr, error) {
	if s.sharded() {
		return s.readdirSharded(p, sess, ctx, dir)
	}
	r := callDyn(p, s, sess, rpc.OpReaddir, 96, s.cfg.ServiceCPUPerOp, func(p *sim.Proc) readdirReply {
		var out readdirReply
		if err := s.claim(dir); err != nil {
			return readdirReply{err: err}
		}
		s.DB.Transaction(p, func(tx *mdb.Tx) {
			if s.staleProtocol(nil) {
				out.err = ErrWrongEpoch
				return
			}
			if _, err := s.dirRow(tx, ctx, dir, false); err != nil {
				out.err = err
				return
			}
			keys := mdb.IndexKeys(tx, s.dentries, "parent", parentIndexKey(dir))
			sort.Slice(keys, func(i, j int) bool { return keys[i].Name < keys[j].Name })
			for _, k := range keys {
				de, ok := mdb.Get(tx, s.dentries, k)
				if !ok {
					continue
				}
				row, _ := mdb.Get(tx, s.inodes, de.Child)
				out.entries = append(out.entries, vfs.DirEntry{Name: k.Name, Ino: de.Child, Type: row.Type})
				out.attrs = append(out.attrs, row.attr())
			}
		})
		for i, e := range out.entries {
			if out.attrs[i].Ino == 0 {
				continue
			}
			s.grantDentry(p, sess, dir, e.Name, e.Ino)
			s.grantAttr(p, sess, e.Ino, "")
		}
		return out
	}, func(r readdirReply) int64 { return 96 + int64(len(r.entries))*160 })
	return r.entries, r.attrs, r.err
}

// Readdir lists the virtual directory (names and types only).
func (s *Service) Readdir(p *sim.Proc, sess *Session, ctx vfs.Ctx, dir vfs.Ino) ([]vfs.DirEntry, error) {
	ents, _, err := s.ReaddirPlus(p, sess, ctx, dir)
	return ents, err
}

// WriteBack records a writer's size/mtime at close (close-to-open
// consistency for attributes the service serves from its tables).
func (s *Service) WriteBack(p *sim.Proc, sess *Session, id vfs.Ino, size int64, mtime time.Duration) error {
	s.Stats.Updates++
	_, err := s.updateRow(p, sess, rpc.OpWriteBack, id, func(row *inodeRow) error {
		if row.Type != vfs.TypeRegular {
			return vfs.ErrInvalid
		}
		row.Size = size
		row.Mtime = mtime
		return nil
	})
	return err
}

// CountObjects returns (files, dirs) for StatFS.
func (s *Service) CountObjects(p *sim.Proc, sess *Session) (int64, int64) {
	type counts struct{ files, dirs int64 }
	r := call(p, s, sess, rpc.OpStatFS, 64, 128, func(p *sim.Proc) counts {
		var out counts
		s.DB.Transaction(p, func(tx *mdb.Tx) {
			for _, row := range mdb.Select(tx, s.inodes, func(k vfs.Ino, v inodeRow) bool { return true }) {
				out.files++
				if row.Type == vfs.TypeDir {
					out.dirs++
				}
			}
		})
		return out
	})
	return r.files, r.dirs
}

// Mapping returns the underlying path of a regular file (cofsctl).
func (s *Service) Mapping(id vfs.Ino) (string, bool) {
	return s.mappings.Peek(id)
}

// EachMapping visits every (file id, underlying path) pair in
// deterministic order (tooling and tests).
func (s *Service) EachMapping(fn func(id vfs.Ino, upath string)) {
	s.mappings.Each(fn)
}

// CheckInvariants for the whole metadata plane lives on MDSCluster (see
// mds.go): with sharding, dentry references and inode rows can live on
// different shards, so referential integrity is a cluster-wide property.
