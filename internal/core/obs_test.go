package core_test

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"cofs/internal/cluster"
	"cofs/internal/core"
	"cofs/internal/obs"
	"cofs/internal/params"
	"cofs/internal/sim"
)

// These tests pin the observability plane (internal/obs,
// docs/observability.md) at the deployment level: the exported trace is
// schema-valid and deterministic, the metrics registry detects injected
// shard skew, and — the contract everything else leans on — enabling
// neither knob leaves the simulation bit-identical.

// obsWorkload drives a mixed workload over a deployment: per-node
// create/stat/readdir plus renames and links that cross shards on a
// multi-shard plane, so the trace covers the client ops, the transport,
// the WAL and the two-phase paths.
func obsWorkload(tb *cluster.Testbed, d *core.Deployment) {
	ctx := cluster.Ctx(0, 1)
	tb.Env.Spawn("obs-workload", func(p *sim.Proc) {
		m := d.Mounts[0]
		if err := m.MkdirAll(p, ctx, "/w/a", 0777); err != nil {
			panic(err)
		}
		if err := m.MkdirAll(p, ctx, "/w/b", 0777); err != nil {
			panic(err)
		}
		for i := 0; i < 16; i++ {
			f, err := m.Create(p, ctx, fmt.Sprintf("/w/a/f%02d", i), 0644)
			if err != nil {
				panic(err)
			}
			f.Close(p)
			if _, err := m.Stat(p, ctx, fmt.Sprintf("/w/a/f%02d", i)); err != nil {
				panic(err)
			}
		}
		if err := m.Rename(p, ctx, "/w/a/f00", "/w/b/g00"); err != nil {
			panic(err)
		}
		if err := m.Link(p, ctx, "/w/a/f01", "/w/b/h01"); err != nil {
			panic(err)
		}
		if err := m.Unlink(p, ctx, "/w/b/g00"); err != nil {
			panic(err)
		}
		if _, err := m.Readdir(p, ctx, "/w/a"); err != nil {
			panic(err)
		}
	})
	tb.Run()
}

func obsDeploy(seed int64, shards int, trace, metrics bool) (*cluster.Testbed, *core.Deployment) {
	cfg := params.Default()
	cfg.COFS.MetadataShards = shards
	cfg.COFS.Trace = trace
	cfg.COFS.Metrics = metrics
	tb := cluster.New(seed, 2, cfg)
	d := core.Deploy(tb, nil)
	tb.Run()
	obsWorkload(tb, d)
	return tb, d
}

type chromeEvent struct {
	Ph   string  `json:"ph"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Ts   float64 `json:"ts"`
	Name string  `json:"name"`
}

// TestTraceGolden is the golden trace test: a two-shard run with
// tracing on exports Chrome trace-event JSON that parses, balances
// every B with an E per track, never steps a track's clock backwards,
// and covers every layer's span vocabulary.
func TestTraceGolden(t *testing.T) {
	_, d := obsDeploy(11, 2, true, false)
	tr := d.Tracer()
	if tr == nil {
		t.Fatal("Trace knob set but deployment has no tracer")
	}
	if tr.Spans == 0 {
		t.Fatal("workload opened no spans")
	}
	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	type key struct{ pid, tid int }
	depth := map[key]int{}
	last := map[key]float64{}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		k := key{ev.Pid, ev.Tid}
		switch ev.Ph {
		case "M":
			continue
		case "B":
			depth[k]++
			names[ev.Name] = true
		case "E":
			depth[k]--
			if depth[k] < 0 {
				t.Fatalf("track %v closes a span it never opened", k)
			}
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
		if ev.Ts < last[k] {
			t.Fatalf("track %v time goes backwards: %v after %v (name %s)", k, ev.Ts, last[k], ev.Name)
		}
		last[k] = ev.Ts
	}
	for k, n := range depth {
		if n != 0 {
			t.Fatalf("track %v ends with %d unbalanced spans", k, n)
		}
	}
	// Every instrumented layer must appear: client ops, the four
	// transport phases, the WAL under the shard service, and the
	// two-phase protocol the cross-shard rename/link/remove walk.
	// (op.lookup is legitimately absent: the dentry cache resolves
	// these paths without a lookup RPC.)
	for _, want := range []string{
		"op.create", "op.getattr", "op.readdir", "op.rename", "op.link", "op.remove",
		"rpc.send", "rpc.queue", "rpc.serve", "rpc.recv",
		"wal.commit", "wal.flush",
		"2pc.validate", "2pc.prepare", "2pc.commit",
	} {
		if !names[want] {
			t.Fatalf("trace is missing %q spans; got %v", want, names)
		}
	}
}

// TestTraceFingerprintStable pins trace determinism end to end: two
// runs of the same seed and configuration must export byte-identical
// traces, and a different seed must not.
func TestTraceFingerprintStable(t *testing.T) {
	_, d1 := obsDeploy(11, 2, true, false)
	_, d2 := obsDeploy(11, 2, true, false)
	if d1.Tracer().Fingerprint() != d2.Tracer().Fingerprint() {
		t.Fatal("same seed, different trace fingerprints")
	}
	_, d3 := obsDeploy(12, 2, true, false)
	if d1.Tracer().Fingerprint() == d3.Tracer().Fingerprint() {
		t.Fatal("different seeds collide on trace fingerprint")
	}
}

// TestObsOffCostIdentity is the zero-cost-off contract: a deployment
// with tracing and metrics enabled must land on exactly the same
// virtual clock and message count as one with both off — observation
// must never perturb the simulation it observes.
func TestObsOffCostIdentity(t *testing.T) {
	for _, shards := range []int{1, 2} {
		tbOff, _ := obsDeploy(5, shards, false, false)
		tbOn, d := obsDeploy(5, shards, true, true)
		if tbOff.Env.Now() != tbOn.Env.Now() || tbOff.Net.Messages != tbOn.Net.Messages {
			t.Fatalf("%d shards: obs-on run diverged: off (%v, %d msgs) vs on (%v, %d msgs)",
				shards, tbOff.Env.Now(), tbOff.Net.Messages, tbOn.Env.Now(), tbOn.Net.Messages)
		}
		if d.Tracer() == nil || d.Metrics() == nil {
			t.Fatal("obs-on deployment lost its tracer or metrics")
		}
	}
}

// TestMetricsSkewDetection injects a hot shard — every rank hammers
// stats at one file while the rest of the plane idles — and requires
// Deployment.Metrics() to expose it: the hot shard's sliding-window
// request rate dominates, Skew names it, and its per-shard latency
// histogram carries the samples.
func TestMetricsSkewDetection(t *testing.T) {
	cfg := params.Default()
	cfg.COFS.MetadataShards = 4
	cfg.COFS.Metrics = true
	tb := cluster.New(21, 2, cfg)
	d := core.Deploy(tb, nil)
	tb.Run()
	ctx := cluster.Ctx(0, 1)
	tb.Env.Spawn("hot", func(p *sim.Proc) {
		m := d.Mounts[0]
		if err := m.MkdirAll(p, ctx, "/hot", 0777); err != nil {
			panic(err)
		}
		f, err := m.Create(p, ctx, "/hot/target", 0644)
		if err != nil {
			panic(err)
		}
		f.Close(p)
		for i := 0; i < 200; i++ {
			if _, err := m.Stat(p, ctx, "/hot/target"); err != nil {
				panic(err)
			}
		}
	})
	tb.Run()
	m := d.Metrics()
	if m == nil {
		t.Fatal("Metrics knob set but deployment has no registry")
	}
	if m.Shards() < 4 {
		t.Fatalf("registry grew to %d shards, want 4", m.Shards())
	}
	now := tb.Env.Now()
	rates := m.RequestRates(now)
	hot, ratio := obs.Skew(rates)
	if hot < 0 || ratio < 4 {
		t.Fatalf("injected skew not detected: hot=%d ratio=%v rates=%v", hot, ratio, rates)
	}
	if rates[hot] == 0 {
		t.Fatalf("hot shard %d has no window traffic: %v", hot, rates)
	}
	// The hot shard's getattr histogram carries the storm: count and a
	// full percentile ladder.
	h := m.Hist(obs.HKey{Op: "op.getattr", Shard: hot})
	if h.Count() < 200 {
		t.Fatalf("hot shard histogram has %d samples, want >= 200", h.Count())
	}
	p50, p95, p99 := h.Quantile(50), h.Quantile(95), h.Quantile(99)
	if p50 <= 0 || p95 < p50 || p99 < p95 {
		t.Fatalf("percentile ladder broken: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
}

// TestCountersCumulativeAcrossPromote pins the failover counter
// contract (stats.Counters.Merge consumed by Deployment.Counters):
// service-plane totals must not reset when a standby is promoted.
func TestCountersCumulativeAcrossPromote(t *testing.T) {
	tb := cluster.New(31, 2, params.Default())
	d := core.Deploy(tb, nil)
	sb := core.DeployStandby(tb, d, time.Millisecond)
	tb.Run()
	ctx := cluster.Ctx(0, 1)
	tb.Env.Spawn("pre", func(p *sim.Proc) {
		m := d.Mounts[0]
		if err := m.MkdirAll(p, ctx, "/c", 0777); err != nil {
			panic(err)
		}
		for i := 0; i < 20; i++ {
			f, err := m.Create(p, ctx, fmt.Sprintf("/c/f%02d", i), 0644)
			if err != nil {
				panic(err)
			}
			f.Close(p)
		}
	})
	tb.Run()
	pre := d.Counters().Get("mds.requests")
	if pre == 0 {
		t.Fatal("no requests before failover")
	}
	d.Service.Crash()
	sb.Promote(d)
	tb.Env.Spawn("post", func(p *sim.Proc) {
		m := d.Mounts[1]
		for i := 0; i < 20; i++ {
			if _, err := m.Stat(p, ctx, fmt.Sprintf("/c/f%02d", i)); err != nil {
				panic(err)
			}
		}
	})
	tb.Run()
	post := d.Counters().Get("mds.requests")
	if post <= pre {
		t.Fatalf("mds.requests reset at failover: %d before, %d after (+20 stats served)", pre, post)
	}
}
