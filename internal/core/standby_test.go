package core_test

import (
	"fmt"
	"testing"
	"time"

	"cofs/internal/cluster"
	"cofs/internal/core"
	"cofs/internal/params"
	"cofs/internal/sim"
	"cofs/internal/vfs"
)

// These tests pin the standby read path's coherence contract
// (params.COFSParams.StandbyReads): reads served from a shard's standby
// are stale-free BY CONSTRUCTION — a read is only served when the
// shard's replication cursor provably covers the row's last commit, in
// which case the standby's copy equals the primary's current committed
// value — so turning the knob on must preserve the lease cache's
// "stale reads are impossible" contract exactly, at ANY shipping
// delay. Reads the cursor cannot prove fresh fall back to the primary
// (charged as a redirect), which is how a mutation committed inside
// the shipping window stays invisible to staleness.

// standbyReadsRig is the lease coherence rig with standby reads on: a
// 3-node COFS, leases granted by the primary, a standby plane shipping
// with the given delay and serving provably-fresh reads.
func standbyReadsRig(t *testing.T, seed int64, shards int, delay time.Duration) (*cluster.Testbed, *core.Deployment, *core.Standby) {
	t.Helper()
	cfg := params.Default()
	cfg.COFS.MetadataShards = shards
	cfg.COFS.StandbyReads = true
	cfg.COFS.AttrLease = 30 * time.Second
	cfg.FUSE.EntryTimeout = time.Nanosecond
	tb := cluster.New(seed, 3, cfg)
	d := core.Deploy(tb, nil)
	sb := core.DeployStandby(tb, d, delay)
	tb.Run()
	return tb, d, sb
}

// TestStandbyReadsCoherence runs cross-node mutation scenarios at every
// shipping delay: node B mutates, node A must observe the mutation
// immediately — whether its read happens inside the shipping window
// (the standby cannot prove freshness and redirects to the primary) or
// after the pipeline drained (the standby serves it). A third node
// with a cold cache then re-reads everything through the drained
// standby and must see the identical namespace.
func TestStandbyReadsCoherence(t *testing.T) {
	delays := []time.Duration{0, time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond}
	for _, shards := range []int{1, 2} {
		for di, delay := range delays {
			shards, delay := shards, delay
			t.Run(fmt.Sprintf("%dshards/delay-%s", shards, delay), func(t *testing.T) {
				tb, d, sb := standbyReadsRig(t, 1000+int64(shards)*10+int64(di), shards, delay)
				A, B, C := d.Mounts[0], d.Mounts[1], d.Mounts[2]
				ctxA, ctxB, ctxC := cluster.Ctx(0, 1), cluster.Ctx(1, 1), cluster.Ctx(2, 1)

				step(tb, "setup", func(p *sim.Proc) {
					if err := A.Mkdir(p, ctxA, "/d", 0777); err != nil {
						t.Error(err)
						return
					}
					for _, name := range []string{"/d/chmod", "/d/remove", "/d/rename", "/d/sibling"} {
						f, err := A.Create(p, ctxA, name, 0644)
						if err != nil {
							t.Error(err)
							return
						}
						f.Close(p)
					}
					// A caches attrs under lease; a miss caches a negative
					// dentry.
					A.Stat(p, ctxA, "/d/chmod")
					A.Stat(p, ctxA, "/d/remove")
					if _, err := A.Stat(p, ctxA, "/d/nope"); err != vfs.ErrNotExist {
						t.Errorf("expected ENOENT, got %v", err)
					}
				})

				// B mutates, and A verifies IN THE SAME DRAINED PHASE right
				// after each mutation: with delay > 0 the commits have not
				// shipped when A reads, so a stale standby serve would be
				// caught here.
				step(tb, "mutate-and-verify-inside-window", func(p *sim.Proc) {
					if _, err := B.Chmod(p, ctxB, "/d/chmod", 0600); err != nil {
						t.Error(err)
					}
					if attr, err := A.Stat(p, ctxA, "/d/chmod"); err != nil || attr.Mode != 0600 {
						t.Errorf("stale mode inside shipping window: %o, %v", attr.Mode, err)
					}
					if err := B.Unlink(p, ctxB, "/d/remove"); err != nil {
						t.Error(err)
					}
					if _, err := A.Stat(p, ctxA, "/d/remove"); err != vfs.ErrNotExist {
						t.Errorf("removed file still resolves inside shipping window: %v", err)
					}
					if err := B.Rename(p, ctxB, "/d/rename", "/d/renamed"); err != nil {
						t.Error(err)
					}
					if _, err := A.Stat(p, ctxA, "/d/rename"); err != vfs.ErrNotExist {
						t.Errorf("renamed-away name still resolves inside shipping window: %v", err)
					}
					f, err := B.Create(p, ctxB, "/d/nope", 0640)
					if err != nil {
						t.Error(err)
					} else {
						f.Close(p)
					}
					if attr, err := A.Stat(p, ctxA, "/d/nope"); err != nil || attr.Mode != 0640 {
						t.Errorf("negative dentry survived create inside shipping window: %v, %v", attr, err)
					}
				})

				// Drain the shipping pipeline, then read the whole namespace
				// from a node with a cold cache: these reads reach the wire
				// and the drained standby serves them — and they must equal
				// the primary's authoritative state.
				tb.Run()
				served := sb.Reads
				step(tb, "verify-after-drain", func(p *sim.Proc) {
					if attr, err := C.Stat(p, ctxC, "/d/chmod"); err != nil || attr.Mode != 0600 {
						t.Errorf("drained standby read wrong mode: %o, %v", attr.Mode, err)
					}
					if _, err := C.Stat(p, ctxC, "/d/remove"); err != vfs.ErrNotExist {
						t.Errorf("drained standby resolves removed file: %v", err)
					}
					if attr, err := C.Stat(p, ctxC, "/d/renamed"); err != nil || attr.Mode != 0644 {
						t.Errorf("drained standby misses renamed-in name: %v, %v", attr, err)
					}
					if attr, err := C.Stat(p, ctxC, "/d/nope"); err != nil || attr.Mode != 0640 {
						t.Errorf("drained standby misses created file: %v, %v", attr, err)
					}
					ents, err := C.Readdir(p, ctxC, "/d")
					if err != nil || len(ents) != 4 {
						t.Errorf("drained standby readdir: %d entries, %v (want 4)", len(ents), err)
					}
				})
				if sb.Reads == served {
					t.Errorf("cold-cache reads after drain served none from the standby (reads=%d fallbacks=%d): battery is vacuous",
						sb.Reads, sb.Fallbacks)
				}
				if err := d.Service.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				if err := d.CheckCacheCoherence(tb.Env.Now()); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestStandbyReadsUnderConcurrency hammers a small shared namespace
// from all nodes with standby reads on at several shipping delays, then
// checks the lease protocol's core invariant at every drained round:
// each still-leased cache entry equals the authoritative table state.
// A standby serve that was stale would poison exactly this check (the
// reading client would have acted on a value older than the row's last
// recalled lease).
func TestStandbyReadsUnderConcurrency(t *testing.T) {
	for _, delay := range []time.Duration{time.Millisecond, 25 * time.Millisecond} {
		delay := delay
		t.Run(fmt.Sprintf("delay-%s", delay), func(t *testing.T) {
			tb, d, sb := standbyReadsRig(t, 2000+int64(delay/time.Millisecond), 2, delay)
			step(tb, "setup", func(p *sim.Proc) {
				for _, dir := range []string{"/w", "/v"} {
					if err := d.Mounts[0].Mkdir(p, cluster.Ctx(0, 1), dir, 0777); err != nil {
						t.Error(err)
					}
				}
			})
			name := func(i int) string {
				if i%2 == 0 {
					return fmt.Sprintf("/w/n%d", i%4)
				}
				return fmt.Sprintf("/v/n%d", i%4)
			}
			for round := 0; round < 4; round++ {
				for node := 0; node < 3; node++ {
					for pid := 1; pid <= 3; pid++ {
						node, pid, round := node, pid, round
						tb.Env.Spawn("storm", func(p *sim.Proc) {
							m := d.Mounts[node]
							ctx := cluster.Ctx(node, pid)
							rng := tb.Env.RNG(fmt.Sprintf("sbstorm.%d.%d.%d", round, node, pid))
							for i := 0; i < 48; i++ {
								switch rng.Intn(10) {
								case 0:
									if f, err := m.Create(p, ctx, name(i), 0644); err == nil {
										f.Close(p)
									}
								case 1:
									m.Unlink(p, ctx, name(i))
								case 2:
									m.Chmod(p, ctx, name(i), 0600+uint32(node))
								case 3:
									m.Rename(p, ctx, name(i), name(i+1))
								case 4:
									m.Readdir(p, ctx, "/w")
								default:
									// Read-heavy: this is the traffic the
									// standby offloads.
									m.Stat(p, ctx, name(i))
								}
							}
						})
					}
				}
				tb.Run()
				if err := d.CheckCacheCoherence(tb.Env.Now()); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				if err := d.Service.CheckInvariants(); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
			}
			if sb.Reads == 0 {
				t.Fatalf("storm served no standby reads (fallbacks=%d): knob not exercised", sb.Fallbacks)
			}
		})
	}
}

// TestStandbyReadsAcrossPrimaryCrash replays the crash cases: a primary
// crash truncates its WAL to the flushed prefix and invalidates the
// replication cursor (the standby may even be AHEAD of what the primary
// recovered), so every standby read inside the resync window must fall
// back — and once the rebuild drains, standby serving must resume with
// the recovered (possibly rolled-back) state, never the pre-crash one.
func TestStandbyReadsAcrossPrimaryCrash(t *testing.T) {
	tb, d, sb := standbyReadsRig(t, 3000, 2, 5*time.Millisecond)
	A, C := d.Mounts[0], d.Mounts[2]
	ctxA, ctxC := cluster.Ctx(0, 1), cluster.Ctx(2, 1)

	step(tb, "build", func(p *sim.Proc) {
		if err := A.Mkdir(p, ctxA, "/out", 0777); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 30; i++ {
			f, err := A.Create(p, ctxA, fmt.Sprintf("/out/f%02d", i), 0644)
			if err != nil {
				t.Error(err)
				return
			}
			f.WriteAt(p, 0, 1024)
			f.Close(p)
		}
	})

	step(tb, "crash-recover", func(p *sim.Proc) {
		d.Service.Crash()
		d.Service.Recover(p)
		d.Service.AdoptIDCounter()
	})

	// The namespace the recovered primary serves is the oracle; the
	// cold-cache node must read exactly it, whether its reads land on
	// the primary (resync pending) or the rebuilt standby (drained).
	var oracle []vfs.DirEntry
	step(tb, "oracle", func(p *sim.Proc) {
		ents, err := A.Readdir(p, ctxA, "/out")
		if err != nil {
			t.Errorf("readdir after recovery: %v", err)
			return
		}
		oracle = ents
	})
	tb.Run() // resync rebuild drains
	step(tb, "verify", func(p *sim.Proc) {
		ents, err := C.Readdir(p, ctxC, "/out")
		if err != nil {
			t.Errorf("cold readdir after recovery: %v", err)
			return
		}
		if fmt.Sprint(ents) != fmt.Sprint(oracle) {
			t.Errorf("recovered namespace diverges through standby:\n oracle: %v\n read:   %v", oracle, ents)
		}
		for _, e := range ents {
			attr, err := C.Stat(p, ctxC, "/out/"+e.Name)
			if err != nil || attr.Ino != e.Ino {
				t.Errorf("stat %s after recovery: %+v, %v", e.Name, attr, err)
			}
		}
	})
	if err := d.Service.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if sb.Reads == 0 && sb.Fallbacks == 0 {
		t.Fatal("crash replay exercised no standby decisions")
	}
}

// TestStandbyReadsAcrossReshard replays the migration case: standby
// serving pauses for the whole 2->4 grow (a mid-migration standby could
// prove a deletion fresh that is really a move), reads keep flowing
// correctly from the primary, and once the plane settles the standby —
// now grown shard-for-shard — serves again at the new shape.
func TestStandbyReadsAcrossReshard(t *testing.T) {
	tb, d, sb := standbyReadsRig(t, 4000, 2, time.Millisecond)
	A, C := d.Mounts[0], d.Mounts[2]
	ctxA := cluster.Ctx(0, 1)

	step(tb, "build", func(p *sim.Proc) {
		if err := A.Mkdir(p, ctxA, "/out", 0777); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 40; i++ {
			f, err := A.Create(p, ctxA, fmt.Sprintf("/out/f%02d", i), 0644)
			if err != nil {
				t.Error(err)
				return
			}
			f.Close(p)
		}
	})

	// Readers race the migration; every read must be correct whether it
	// lands before the pause, during it (primary serves), or after.
	for pid := 1; pid <= 3; pid++ {
		pid := pid
		tb.Env.Spawn("reader", func(p *sim.Proc) {
			for i := 0; i < 60; i++ {
				name := fmt.Sprintf("/out/f%02d", i%40)
				attr, err := C.Stat(p, cluster.Ctx(2, pid), name)
				if err != nil || attr.Mode != 0644 {
					t.Errorf("read %s during reshard: %+v, %v", name, attr, err)
					return
				}
			}
		})
	}
	tb.Env.Spawn("grow", func(p *sim.Proc) {
		if err := d.Service.Reshard(p, 4); err != nil {
			t.Errorf("reshard: %v", err)
		}
	})
	tb.Run()

	if got := len(sb.Replicas); got != 4 {
		t.Fatalf("standby has %d replicas after grow, want 4", got)
	}
	// The settled, drained standby serves at the new shape.
	served := sb.Reads
	step(tb, "verify-settled", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			name := fmt.Sprintf("/out/f%02d", i)
			attr, err := d.Mounts[1].Stat(p, cluster.Ctx(1, 9), name)
			if err != nil || attr.Mode != 0644 {
				t.Errorf("read %s after settle: %+v, %v", name, attr, err)
			}
		}
	})
	if sb.Reads == served {
		t.Errorf("no standby reads served after the reshard settled (reads=%d fallbacks=%d)", sb.Reads, sb.Fallbacks)
	}
	if err := d.Service.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestStandbyPromoteWhileServingReads replays the failover case: the
// primary plane dies while the standby is actively serving reads; the
// promoted plane must serve the shipped namespace, and the standby read
// counters must survive the switch in the deployment's report.
func TestStandbyPromoteWhileServingReads(t *testing.T) {
	tb, d, sb := standbyReadsRig(t, 5000, 2, time.Millisecond)
	A, C := d.Mounts[0], d.Mounts[2]
	ctxA, ctxC := cluster.Ctx(0, 1), cluster.Ctx(2, 1)

	step(tb, "build", func(p *sim.Proc) {
		if err := A.Mkdir(p, ctxA, "/out", 0777); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 20; i++ {
			f, err := A.Create(p, ctxA, fmt.Sprintf("/out/f%02d", i), 0644)
			if err != nil {
				t.Error(err)
				return
			}
			f.Close(p)
		}
	})
	step(tb, "serve", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			if _, err := C.Stat(p, ctxC, fmt.Sprintf("/out/f%02d", i)); err != nil {
				t.Errorf("standby-era read: %v", err)
			}
		}
	})
	if sb.Reads == 0 {
		t.Fatal("standby served nothing before the failover: test is vacuous")
	}
	preReads := sb.Reads

	d.Service.Crash()
	if lost := sb.Promote(d); lost != 0 {
		t.Logf("failover lost %d unshipped records (allowed)", lost)
	}
	step(tb, "after-promote", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			if _, err := C.Stat(p, ctxC, fmt.Sprintf("/out/f%02d", i)); err != nil {
				t.Errorf("post-promote read: %v", err)
			}
		}
		f, err := C.Create(p, ctxC, "/out/post", 0644)
		if err != nil {
			t.Errorf("post-promote create: %v", err)
		} else {
			f.Close(p)
		}
	})
	// The promoted plane has no standby of its own; the report still
	// carries the standby-era serve counts.
	if got := d.Counters().Get("mds.standby-reads"); got < preReads {
		t.Errorf("mds.standby-reads = %d after promote, want >= %d (counters must survive failover)", got, preReads)
	}
	if err := d.Service.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
