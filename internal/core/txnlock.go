package core

import (
	"cofs/internal/lock"
	"cofs/internal/sim"
	"cofs/internal/vfs"
)

// This file is the metadata plane's side of the lock-ordered cross-shard
// transaction layer (docs/transactions.md). On a sharded plane every
// mutation — both the multi-shard protocols in twophase.go and the
// locally-committing Create/Link fast paths — opens a rowTxn over the
// inode and dentry rows it will read-depend on or write, holds the locks
// across its whole validate→commit span, and releases them at commit or
// abort. Conflicting mutations therefore serialize on their row
// footprints instead of interleaving between protocol phases, which is
// what closes the rename/remove races the unlocked protocol had; the
// canonical acquisition order (lock.RowKey.Less) makes the waiting
// deadlock-free by construction.
//
// Rows a mutation only discovers by reading (a remove's child inode, a
// rename's replaced target) join the footprint through rowTxn.extend,
// which re-acquires the grown footprint in canonical order and tells the
// caller whether it ever waited — if it did, the validation reads that
// produced the discovery may be stale and must be re-run. On the
// uncontended path no acquisition waits, nothing re-runs and nothing is
// charged, so uncontended costs are bit-identical to the unlocked
// protocol (pinned by TestTxnLocksUncontendedCostIdentical).

// Row-lock kinds of the metadata plane.
const (
	lockKindInode lock.Kind = iota + 1
	lockKindDentry
)

// inoKey names id's inode row in the canonical lock order.
func (s *Service) inoKey(id vfs.Ino) lock.RowKey {
	k := lock.RowKey{Kind: lockKindInode, ID: uint64(id)}
	if s.cluster != nil {
		k.Shard = s.cluster.Map.Of(id)
	}
	return k
}

// dentKey names the (parent, name) dentry row in the canonical lock
// order; it lives on the parent directory's shard, like the row itself.
func (s *Service) dentKey(parent vfs.Ino, name string) lock.RowKey {
	k := lock.RowKey{Kind: lockKindDentry, ID: uint64(parent), Name: name}
	if s.cluster != nil {
		k.Shard = s.cluster.Map.Of(parent)
	}
	return k
}

// rowTxn is one mutation's footprint in the plane's row-lock table. A
// nil rowTxn (unsharded plane, or COFSParams.DisableTxnLocks) is a
// valid no-op: every method tolerates it, so call sites stay
// unconditional.
type rowTxn struct {
	s    *Service
	held []lock.RowKey
}

// lockRows opens a lock-ordered transaction over keys, coordinated by
// shard s. It blocks (in virtual time, FIFO per row) while any key is
// held by another mutation; the shard's worker thread is released while
// parked, the same non-blocking-server discipline as peerCall, so
// waiting transactions cannot starve the pool of the shard whose
// progress they depend on.
func (s *Service) lockRows(p *sim.Proc, keys ...lock.RowKey) *rowTxn {
	if !s.sharded() || s.cluster.rowLocks == nil {
		return nil
	}
	held := lock.SortKeys(keys)
	s.acquireRows(p, held)
	return &rowTxn{s: s, held: held}
}

// acquireRows locks keys under the worker-thread discipline above.
func (s *Service) acquireRows(p *sim.Proc, keys []lock.RowKey) {
	if s.cluster.rowLocks.Acquire(p, keys, func() { s.host.CPU.Release(p) }) {
		s.host.CPU.Acquire(p)
	}
}

// extend grows the transaction's footprint with rows discovered by its
// validation reads. Late keys cannot simply be locked in place — they
// may sort before rows already held, and acquiring against the
// canonical order is exactly what deadlocks — so the whole footprint is
// released and re-acquired in order. extend reports whether any
// re-acquisition waited: if it did, the world may have moved while the
// transaction briefly held nothing, and the caller must re-run its
// validation reads before trusting the discovery. When nothing waited,
// no other process ran between release and re-acquire (the simulation
// only switches processes at blocking points), so prior reads still
// hold and the uncontended path re-validates nothing.
func (t *rowTxn) extend(p *sim.Proc, keys ...lock.RowKey) bool {
	if t == nil || len(keys) == 0 || t.holdsAll(keys) {
		// Already covered (a re-validation rediscovered the same rows):
		// nothing is released, so nothing can have raced — without this
		// fast path two conflicting mutations re-validating against each
		// other would hand the FIFO locks back and forth forever.
		return false
	}
	t.s.cluster.rowLocks.Release(p, t.held)
	t.held = lock.SortKeys(append(t.held, keys...))
	waited := t.s.cluster.rowLocks.Acquire(p, t.held, func() { t.s.host.CPU.Release(p) })
	if waited {
		t.s.host.CPU.Acquire(p)
	}
	return waited
}

// holdsAll reports whether every key is already in the footprint.
func (t *rowTxn) holdsAll(keys []lock.RowKey) bool {
	for _, k := range keys {
		found := false
		for _, h := range t.held {
			if h == k {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// release drops every held row lock. Commit and abort paths release
// identically; call sites defer it when the transaction opens.
func (t *rowTxn) release(p *sim.Proc) {
	if t == nil || t.held == nil {
		return
	}
	t.s.cluster.rowLocks.Release(p, t.held)
	t.held = nil
}
