package core

import (
	"cofs/internal/lock"
	"cofs/internal/reshard"
	"cofs/internal/sim"
	"cofs/internal/vfs"
)

// This file is the metadata plane's side of the lock-ordered cross-shard
// transaction layer (docs/transactions.md). On a sharded plane every
// mutation — both the multi-shard protocols in twophase.go and the
// locally-committing Create/Link fast paths — opens a rowTxn over the
// inode and dentry rows it will read-depend on or write, holds the locks
// across its whole validate→commit span, and releases them at commit or
// abort. Conflicting mutations therefore serialize on their row
// footprints instead of interleaving between protocol phases, which is
// what closes the rename/remove races the unlocked protocol had; the
// canonical acquisition order (lock.RowKey.Less) makes the waiting
// deadlock-free by construction.
//
// Footprints are mode-aware (lock.Shared / lock.Exclusive): a mutation
// takes Exclusive only on the rows it writes structurally (dentries it
// inserts, deletes or re-points) or whose cross-row predicates its
// validate→commit gap freezes (a removed directory's emptiness), and
// Shared on rows it merely read-depends on — above all the parent
// directory's inode row, whose nlink/mtime bookkeeping is a single
// atomic read-modify-write inside one serialized DB transaction and
// needs no cross-phase exclusivity. Shared holders admit each other, so
// concurrent creates in one directory overlap their validate→commit
// spans (and their group commits) again instead of serializing on the
// parent's row.
//
// Rows a mutation only discovers by reading (a remove's child inode, a
// rename's replaced target) join the footprint through rowTxn.extend.
// A discovered row already held Shared is upgraded in place when it has
// no other sharer (free, no re-validation); otherwise — and for genuinely
// new keys, which may sort before rows already held — the whole
// footprint is released and re-acquired in canonical order, and extend
// tells the caller whether it ever waited: if it did, the validation
// reads that produced the discovery may be stale and must be re-run. On
// the uncontended path no acquisition waits, nothing re-runs and nothing
// is charged, so uncontended costs are bit-identical to the unlocked
// protocol (pinned by TestTxnLocksUncontendedCostIdentical, in all
// three modes: locks off, exclusive-only, shared/exclusive).

// Row-lock kinds of the metadata plane.
const (
	lockKindInode lock.Kind = iota + 1
	lockKindDentry
)

// lockShard is the RowKey.Shard component of a row's lock key. It is
// the deploy-time strided placement, frozen forever: the component only
// namespaces the canonical acquisition order, and an order component
// that tracked the live (epoch-versioned) map would let two
// transactions spanning a migration sort the same rows differently —
// exactly what reintroduces deadlock. Ownership questions go to
// MDSCluster.Of; this is ordering only.
func (c *MDSCluster) lockShard(id vfs.Ino) int {
	return reshard.Owner(uint64(id), c.lockShards)
}

// inoKey names id's inode row in the canonical lock order.
func (s *Service) inoKey(id vfs.Ino) lock.RowKey {
	k := lock.RowKey{Kind: lockKindInode, ID: uint64(id)}
	if s.cluster != nil {
		k.Shard = s.cluster.lockShard(id)
	}
	return k
}

// dentKey names the (parent, name) dentry row in the canonical lock
// order; it lives on the parent directory's shard, like the row itself.
func (s *Service) dentKey(parent vfs.Ino, name string) lock.RowKey {
	k := lock.RowKey{Kind: lockKindDentry, ID: uint64(parent), Name: name}
	if s.cluster != nil {
		k.Shard = s.cluster.lockShard(parent)
	}
	return k
}

// rowTxn is one mutation's footprint in the plane's row-lock table. A
// nil rowTxn (unsharded plane, or COFSParams.DisableTxnLocks) is a
// valid no-op: every method tolerates it, so call sites stay
// unconditional.
type rowTxn struct {
	s    *Service
	held []lock.Req
	// buf is the footprint's reusable backing array; held aliases it
	// unless an extend outgrew it. Owned by the cluster's txnFree pool
	// across transactions.
	buf []lock.Req
}

// staleProtocol reports whether an operation body dispatched down a
// single-shard fast path is executing on a plane that has since grown
// (the first instants of a Reshard from one shard): its mutation would
// run outside the row-lock discipline a live migration serializes
// against, so the body must bounce it with ErrWrongEpoch — the retry
// re-enters the method and takes the locked sharded path. The check
// runs inside the mutation's serialized table transaction, so it
// happens-before or happens-after a migration batch's transactions,
// never between them. Always false on a plane that never reshards, and
// on DisableTxnLocks planes (which refuse to reshard).
func (s *Service) staleProtocol(t *rowTxn) bool {
	if t == nil && s.sharded() && s.cluster.rowLocks != nil {
		s.cluster.rstats.Redirects++
		return true
	}
	return false
}

// lockRows opens a lock-ordered transaction over the requested rows,
// coordinated by shard s. It blocks (in virtual time, FIFO per row)
// while any key is incompatibly held by another mutation; the shard's
// worker thread is released while parked, the same non-blocking-server
// discipline as peerCall, so waiting transactions cannot starve the
// pool of the shard whose progress they depend on.
func (s *Service) lockRows(p *sim.Proc, reqs ...lock.Req) *rowTxn {
	if !s.sharded() || s.cluster.rowLocks == nil {
		return nil
	}
	c := s.cluster
	var t *rowTxn
	if n := len(c.txnFree); n > 0 {
		t = c.txnFree[n-1]
		c.txnFree[n-1] = nil
		c.txnFree = c.txnFree[:n-1]
	} else {
		t = &rowTxn{}
	}
	t.s = s
	// Copying into the pooled buffer keeps the caller's variadic slice
	// from escaping; every mutation's footprint then sorts and dedups in
	// place in reused memory.
	t.held = lock.SortReqs(append(t.buf[:0], reqs...))
	s.acquireRows(p, t.held)
	return t
}

// acquireRows locks reqs under the worker-thread discipline above.
func (s *Service) acquireRows(p *sim.Proc, reqs []lock.Req) {
	if s.cluster.rowLocks.Acquire(p, reqs, func() { s.host.CPU.Release(p) }) {
		s.host.CPU.Acquire(p)
	}
}

// extend grows the transaction's footprint with rows discovered by its
// validation reads, or strengthens the mode of rows already held.
// Three cases, cheapest first:
//
//   - Every request is already covered (a re-validation rediscovered
//     the same rows, at the same or weaker mode): nothing is released,
//     so nothing can have raced — without this fast path two
//     conflicting mutations re-validating against each other would
//     hand the FIFO locks back and forth forever. Returns false.
//   - Only mode upgrades (no new keys) and every upgraded row has no
//     other sharer: each converts Shared→Exclusive in place
//     (lock.RowLocks.TryUpgrade), free and without releasing anything,
//     so prior validation reads still stand. Returns false.
//   - Otherwise the late keys cannot simply be locked in place — they
//     may sort before rows already held, and acquiring against the
//     canonical order is exactly what deadlocks — so the whole
//     footprint is released and re-acquired in canonical order with
//     the merged (strongest) modes. extend then reports whether any
//     re-acquisition waited: if it did, the world may have moved while
//     the transaction briefly held nothing, and the caller must re-run
//     its validation reads before trusting the discovery. When nothing
//     waited, no other process ran between release and re-acquire (the
//     simulation only switches processes at blocking points), so prior
//     reads still hold and the uncontended path re-validates nothing.
func (t *rowTxn) extend(p *sim.Proc, reqs ...lock.Req) bool {
	if t == nil || len(reqs) == 0 {
		return false
	}
	var fresh, upgrades []lock.Req
	for _, r := range reqs {
		switch held, ok := t.holdMode(r.Key); {
		case !ok:
			fresh = append(fresh, r)
		case held < r.Mode:
			upgrades = append(upgrades, r)
		}
	}
	if len(fresh) == 0 && len(upgrades) == 0 {
		return false
	}
	if len(fresh) == 0 {
		// Convert only if every row can upgrade in place (pre-checked,
		// so a refusal late in the batch cannot strand — and count —
		// conversions that are released again microseconds later).
		// A row we hold Shared blocks its upgrade iff another sharer
		// is present; nothing can change between check and convert,
		// neither call blocks.
		inPlace := true
		for _, r := range upgrades {
			if sh, ex := t.s.cluster.rowLocks.Holders(r.Key); !ex && sh > 1 {
				inPlace = false
				break
			}
		}
		if inPlace {
			for _, r := range upgrades {
				t.s.cluster.rowLocks.TryUpgrade(p, r.Key)
				t.setHoldMode(r.Key, r.Mode)
			}
			return false
		}
		// Another sharer holds an upgraded row: fall through to the
		// release-and-reacquire path.
	}
	t.s.cluster.rowLocks.Release(p, t.held)
	t.held = lock.SortReqs(append(t.held, reqs...))
	waited := t.s.cluster.rowLocks.Acquire(p, t.held, func() { t.s.host.CPU.Release(p) })
	if waited {
		t.s.host.CPU.Acquire(p)
	}
	return waited
}

// holdMode returns the mode key is held with, if it is in the footprint.
func (t *rowTxn) holdMode(key lock.RowKey) (lock.Mode, bool) {
	for _, h := range t.held {
		if h.Key == key {
			return h.Mode, true
		}
	}
	return 0, false
}

// setHoldMode records an in-place upgrade in the footprint.
func (t *rowTxn) setHoldMode(key lock.RowKey, m lock.Mode) {
	for i := range t.held {
		if t.held[i].Key == key {
			t.held[i].Mode = m
			return
		}
	}
}

// release drops every held row lock and returns the footprint to the
// cluster's pool. Commit and abort paths release identically; call
// sites defer it when the transaction opens. Each rowTxn is released
// exactly once (the nil-held guard makes a second call a no-op without
// touching the pool).
func (t *rowTxn) release(p *sim.Proc) {
	if t == nil || t.held == nil {
		return
	}
	c := t.s.cluster
	c.rowLocks.Release(p, t.held)
	// Keep whichever backing array the footprint ended up in — an extend
	// may have grown it — for the next transaction.
	t.buf = t.held[:0]
	t.held = nil
	t.s = nil
	c.txnFree = append(c.txnFree, t)
}
