package core_test

import (
	"fmt"
	"testing"
	"time"

	"cofs/internal/cluster"
	"cofs/internal/core"
	"cofs/internal/params"
	"cofs/internal/sim"
	"cofs/internal/vfs"
	"cofs/internal/vfs/conformance"
)

// COFS must be semantically indistinguishable from the file system it
// interposes (section III: "the COFS prototype is POSIX compliant") at
// every point of the deployment space: store backend, shard count,
// client-cache mode, lock mode. TestConformanceMatrix runs the full
// battery — including the crash/recover, crash/promote and live-reshard
// capability cases — against the whole cross-product; the plain
// TestConformance variants keep the paper's default deployment and the
// attr-cache extension directly greppable.

// cofsSystem deploys a two-node COFS testbed for one conformance case
// and wires every capability hook: crash/recover and standby-promote
// over the plane's WAL machinery, live reshard over the handoff
// protocol, and a second mount for the coherence cases.
func cofsSystem(seed int64, cfg params.Config) *conformance.System {
	tb := cluster.New(seed, 2, cfg)
	d := core.Deploy(tb, nil)
	sb := core.DeployStandby(tb, d, 10*time.Millisecond)
	tb.Run()
	return &conformance.System{
		Env:    tb.Env,
		Mount:  d.Mounts[0],
		User:   vfs.Ctx{Node: 0, PID: 1, UID: 1000, GID: 100},
		Other:  vfs.Ctx{Node: 0, PID: 2, UID: 2000, GID: 200},
		Root:   vfs.Ctx{Node: 0, PID: 3, UID: 0, GID: 0},
		Mount2: d.Mounts[1],
		User2:  vfs.Ctx{Node: 1, PID: 1, UID: 1000, GID: 100},
		Shards: cfg.COFS.MetadataShards,
		Check:  func() error { return d.Service.CheckInvariants() },
		Crash:  func() { d.Service.Crash() },
		Recover: func(p *sim.Proc) {
			d.Service.Recover(p)
			d.Service.AdoptIDCounter()
		},
		Promote: func(p *sim.Proc) { sb.Promote(d) },
		Reshard: func(p *sim.Proc, n int) error { return d.Service.Reshard(p, n) },
	}
}

// cofsCaps declares what a COFS deployment supports. Negative-dentry
// leases exist only in lease-cache mode and the stale-free standby
// read battery only applies when the deployment routes reads through
// its standbys; everything else holds across the whole matrix.
func cofsCaps(cfg params.Config) conformance.Capabilities {
	return conformance.Capabilities{
		Permissions:          true,
		Hardlinks:            true,
		RenameOverNonempty:   true,
		NegativeDentryLeases: cfg.COFS.AttrLease > 0,
		CrashRecover:         true,
		Handoff:              true,
		StandbyReads:         cfg.COFS.StandbyReads,
	}
}

// cofsProvider builds the conformance provider for one deployment
// configuration, deriving a distinct deterministic seed per case from
// the configuration axes.
func cofsProvider(name string, seed int64, cfg params.Config) conformance.Provider {
	return conformance.Provider{
		Name:         name,
		Capabilities: cofsCaps(cfg),
		New: func(t *testing.T) *conformance.System {
			return cofsSystem(seed, cfg)
		},
	}
}

// TestConformance runs the battery against the paper's default
// deployment (single shard, mdb store, no client cache).
func TestConformance(t *testing.T) {
	conformance.Run(t, cofsProvider("cofs", 13, params.Default()))
}

// TestConformanceWithAttrCache repeats the battery with the client
// attribute cache (the paper's section IV-B extension) enabled: the
// cache must be invisible to correctness, only to timing.
func TestConformanceWithAttrCache(t *testing.T) {
	cfg := params.Default()
	cfg.COFS.AttrCacheTimeout = cfg.FUSE.EntryTimeout
	conformance.Run(t, cofsProvider("cofs-attrcache", 17, cfg))
}

// TestConformanceMatrix is the provider-grade cross-product: every
// store backend × shard count × client-cache mode × lock mode ×
// standby-read routing, each running the full battery plus the
// crash/promote and reshard replays. Exclusive row locks only change
// behaviour where the cross-shard transaction layer runs, so the excl
// axis starts at 2 shards; the standby-read axis is bounded to the
// shared-lock cells (routing reads through standbys is orthogonal to
// the lock mode, which the plain cells already cross).
func TestConformanceMatrix(t *testing.T) {
	axis := 0
	for _, backend := range []string{"mdb", "mdls"} {
		for _, shards := range []int{1, 2, 4} {
			for _, lease := range []bool{false, true} {
				for _, excl := range []bool{false, true} {
					for _, sbr := range []bool{false, true} {
						if excl && shards == 1 {
							continue
						}
						if sbr && excl {
							continue
						}
						axis++
						cfg := params.Default()
						cfg.COFS.MetadataStore = backend
						cfg.COFS.MetadataShards = shards
						cfg.COFS.ExclusiveRowLocks = excl
						cfg.COFS.StandbyReads = sbr
						if lease {
							cfg.COFS.AttrLease = 30 * time.Second
							cfg.COFS.RPCBatch = true
						}
						mode := "nolease"
						if lease {
							mode = "lease"
						}
						locks := "shared"
						if excl {
							locks = "excl"
						}
						name := fmt.Sprintf("%s/%dshards/%s-%s", backend, shards, mode, locks)
						if sbr {
							name += "-sbreads"
						}
						seed := int64(100 + axis)
						t.Run(name, func(t *testing.T) {
							conformance.Run(t, cofsProvider("cofs-"+name, seed, cfg))
						})
					}
				}
			}
		}
	}
}
