package core_test

import (
	"fmt"
	"testing"
	"time"

	"cofs/internal/cluster"
	"cofs/internal/core"
	"cofs/internal/params"
	"cofs/internal/vfs"
	"cofs/internal/vfs/conformance"
)

// TestConformance runs the shared POSIX-behaviour battery against COFS
// deployed over the GPFS-like file system: the virtualization layer must
// be semantically indistinguishable from the file system it interposes
// (section III: "the COFS prototype is POSIX compliant"). The service's
// referential-integrity invariants are re-checked after every subtest.
func TestConformance(t *testing.T) {
	conformance.Run(t, func(t *testing.T) *conformance.System {
		tb := cluster.New(13, 1, params.Default())
		d := core.Deploy(tb, nil)
		tb.Run()
		return &conformance.System{
			Env:                 tb.Env,
			Mount:               d.Mounts[0],
			User:                vfs.Ctx{Node: 0, PID: 1, UID: 1000, GID: 100},
			Other:               vfs.Ctx{Node: 0, PID: 2, UID: 2000, GID: 200},
			Root:                vfs.Ctx{Node: 0, PID: 3, UID: 0, GID: 0},
			EnforcesPermissions: true,
			Check:               d.Service.CheckInvariants,
		}
	})
}

// TestConformanceSharded repeats the battery against a sharded metadata
// plane: shard count must be observationally invisible — only the
// virtual-time costs may change. Cluster-wide referential integrity
// (including row placement) is re-checked after every subtest.
func TestConformanceSharded(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		shards := shards
		t.Run(fmt.Sprintf("%dshards", shards), func(t *testing.T) {
			conformance.Run(t, func(t *testing.T) *conformance.System {
				cfg := params.Default()
				cfg.COFS.MetadataShards = shards
				tb := cluster.New(23+int64(shards), 1, cfg)
				d := core.Deploy(tb, nil)
				tb.Run()
				return &conformance.System{
					Env:                 tb.Env,
					Mount:               d.Mounts[0],
					User:                vfs.Ctx{Node: 0, PID: 1, UID: 1000, GID: 100},
					Other:               vfs.Ctx{Node: 0, PID: 2, UID: 2000, GID: 200},
					Root:                vfs.Ctx{Node: 0, PID: 3, UID: 0, GID: 0},
					EnforcesPermissions: true,
					Check:               d.Service.CheckInvariants,
				}
			})
		})
	}
}

// TestConformanceWithAttrCache repeats the battery with the client
// attribute cache (the paper's section IV-B extension) enabled: the
// cache must be invisible to correctness, only to timing.
func TestConformanceWithAttrCache(t *testing.T) {
	conformance.Run(t, func(t *testing.T) *conformance.System {
		cfg := params.Default()
		cfg.COFS.AttrCacheTimeout = cfg.FUSE.EntryTimeout
		tb := cluster.New(17, 1, cfg)
		d := core.Deploy(tb, nil)
		tb.Run()
		return &conformance.System{
			Env:                 tb.Env,
			Mount:               d.Mounts[0],
			User:                vfs.Ctx{Node: 0, PID: 1, UID: 1000, GID: 100},
			Other:               vfs.Ctx{Node: 0, PID: 2, UID: 2000, GID: 200},
			Root:                vfs.Ctx{Node: 0, PID: 3, UID: 0, GID: 0},
			EnforcesPermissions: true,
			Check:               d.Service.CheckInvariants,
		}
	})
}

// TestConformanceWithLeaseCache repeats the battery with the coherent
// lease cache (and RPC batching) enabled at 1, 2 and 4 shards: the
// lease protocol must be invisible to single-client correctness too.
func TestConformanceWithLeaseCache(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		shards := shards
		t.Run(fmt.Sprintf("%dshards", shards), func(t *testing.T) {
			conformance.Run(t, func(t *testing.T) *conformance.System {
				cfg := params.Default()
				cfg.COFS.MetadataShards = shards
				cfg.COFS.AttrLease = 30 * time.Second
				cfg.COFS.RPCBatch = true
				tb := cluster.New(29+int64(shards), 1, cfg)
				d := core.Deploy(tb, nil)
				tb.Run()
				return &conformance.System{
					Env:                 tb.Env,
					Mount:               d.Mounts[0],
					User:                vfs.Ctx{Node: 0, PID: 1, UID: 1000, GID: 100},
					Other:               vfs.Ctx{Node: 0, PID: 2, UID: 2000, GID: 200},
					Root:                vfs.Ctx{Node: 0, PID: 3, UID: 0, GID: 0},
					EnforcesPermissions: true,
					Check:               d.Service.CheckInvariants,
				}
			})
		})
	}
}
