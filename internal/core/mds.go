package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"cofs/internal/lock"
	"cofs/internal/netsim"
	"cofs/internal/params"
	"cofs/internal/reshard"
	"cofs/internal/rpc"
	"cofs/internal/sim"
	"cofs/internal/vfs"
)

// This file implements the sharded metadata service plane: the paper's
// future-work direction of distributing the metadata server itself
// (section V). An MDSCluster runs N independent metadata shards, each a
// *Service on its own simulated host with its own disk and Mnesia-style
// tables. Clients route every operation to a coordinator shard chosen by
// a deterministic shard map; operations whose rows span shards run an
// explicit two-phase protocol over simulated shard-to-shard RPCs (see
// twophase.go), so the virtual-time model keeps charging realistic
// latency for the distribution the single-service prototype avoided.
//
// The shard map is epoch-versioned (internal/reshard, docs/
// resharding.md): a small coordinator owns the authoritative version,
// MDSCluster.Reshard migrates rows to a new shard count while the plane
// keeps serving, and clients route by the (possibly stale) version
// their session last fetched. A shard that no longer owns a request's
// routing row answers ErrWrongEpoch; the routing layer below refetches
// the map and retries. With Reshard never called the current version is
// the deploy-time strided map forever, every session shares its
// pointer, and routing is bit-identical to a static map.

// ShardMap is the deterministic placement function of the metadata
// plane. Inode rows (and their mappings) live on the shard derived from
// the inode id; dentries live on the shard of their parent directory, so
// Lookup and Readdir are always coordinated by a single shard.
//
// Placement is strided: shard s owns every id with (id-1) mod N == s,
// and each shard allocates ids from its own stride. New regular files
// and symlinks draw their id from the parent directory's shard, so a
// create commits on one shard; new directories draw theirs from the
// shard hashed from (parent, name), which spreads independent directory
// subtrees — and the load of everything later created inside them —
// across the whole plane.
type ShardMap struct {
	// Shards is the shard count N. 0 and 1 both mean "unsharded".
	Shards int
}

// Of returns the shard owning an inode id. The same id maps to the same
// shard on every run and across restarts with an unchanged shard count.
func (m ShardMap) Of(ino vfs.Ino) int {
	return reshard.Owner(uint64(ino), m.Shards)
}

// DirTarget returns the shard a new directory created as (parent, name)
// allocates its inode from. Hashing the birth name (rather than
// inheriting the parent's shard) is what keeps the map balanced: without
// it, every object would transitively collapse onto the root's shard.
func (m ShardMap) DirTarget(parent vfs.Ino, name string) int {
	if m.Shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(parent) >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(name))
	return int(mix64(h.Sum64()) % uint64(m.Shards))
}

// ErrWrongEpoch is the redirect a shard answers when the client's shard
// map raced a live migration: the request reached a shard that no
// longer (or does not yet) own its routing row. The routing layer
// refetches the current map version and retries; the error never
// escapes to the VFS surface.
var ErrWrongEpoch = errors.New("cofs: shard map epoch out of date")

// MDSCluster is the sharded COFS metadata service plane. It exposes the
// same operation surface the single Service used to, routing each call
// to its coordinator shard; a deployment with one shard is behaviourally
// and cost-identical to the paper's prototype.
type MDSCluster struct {
	// Maps owns the epoch-versioned shard map (internal/reshard). The
	// current version is the authoritative ownership function; sessions
	// route by the version they last fetched.
	Maps *reshard.Coordinator
	cfg  params.COFSParams
	// full keeps the whole testbed configuration: Reshard builds new
	// shards (disk, database, service) from it.
	full   params.Config
	net    *netsim.Net
	shards []*Service
	// lockShards freezes the deploy-time shard count for the canonical
	// row-lock order (lock.RowKey.Shard): the ordering component must
	// name the same shard for the same row at every epoch, or two
	// transactions spanning a migration would sort the same rows
	// differently and the deadlock-freedom argument would fall. It is
	// an ordering namespace only — actual ownership lives in Maps.
	lockShards int
	// sessions tracks every client connection: growing the plane must
	// dial each session's channels to the new shards before any request
	// can be routed at them.
	sessions []*Session
	// rowLocks is the plane's ordered row-lock table: cross-shard
	// mutations hold per-inode/per-dentry locks across their whole
	// validate→commit span (txnlock.go, docs/transactions.md). Nil on
	// unsharded planes — a single shard commits every mutation in one
	// serialized transaction — and when COFSParams.DisableTxnLocks
	// reverts to the unlocked protocol for regression replays. Growing
	// an unsharded plane creates it (Reshard).
	rowLocks *lock.RowLocks
	// txnFree recycles rowTxn footprints (struct plus req buffer): every
	// sharded mutation opens one, and a storm opens millions
	// (txnlock.go).
	txnFree []*rowTxn
	// reshardHost is the coordinator's own small host, created lazily at
	// the first Reshard, with one channel per shard for migration
	// traffic.
	reshardHost  *netsim.Host
	reshardConns []*rpc.Conn
	// rstats counts the resharding activity (mds.reshard-* counters).
	rstats reshard.Stats
	// resharding is Reshard's re-entry latch. The coordinator's ErrBusy
	// only triggers at Begin, which runs after the plane has already
	// been grown and its allocators re-pointed; the latch is taken
	// before the first mutation, so a Reshard losing a race changes
	// nothing (the simulation is cooperative: there is no yield between
	// reading and setting it).
	resharding bool
	// priorPeer carries the peer-channel counters of a plane this one
	// replaced at failover, keeping the per-layer report cumulative
	// like the client-side counters.
	priorPeer rpc.ConnStats
	// hostPrefix names hosts growTo provisions, matching the
	// AddServiceHosts convention of the plane's deploy ("cofs-mds" for
	// primaries, "cofs-mds-standby" for standby planes).
	hostPrefix string
	// standbys are the hot-standby planes attached to this primary
	// (replication.go): a reshard grows and retires them in lockstep so
	// the standby shape always tracks the current epoch.
	standbys []*Standby
	// priorStandbyReads/-Fallbacks carry the standby read counters of a
	// plane this one replaced at Promote, like priorPeer above.
	priorStandbyReads     int64
	priorStandbyFallbacks int64
	// onReshardStep/reshardSeq drive the crash-injection step hook
	// (OnReshardStep); recovering suppresses it while recoverReshard
	// replays an interrupted migration.
	onReshardStep func(seq int, at ReshardPoint) bool
	reshardSeq    int
	recovering    bool
	// obs is the optional tracing/metrics plane (obs.go). Nil by
	// default; every hook nil-checks it, so a plane that never enables
	// observability pays nothing.
	obs *obsPlane
}

// NewMDSCluster creates one metadata shard per host. The hosts must be
// on the deployment's network; each shard gets a freshly attached local
// disk named after its host, plus an RPC channel to every peer shard
// for the two-phase protocol traffic.
func NewMDSCluster(net *netsim.Net, hosts []*netsim.Host, cfg params.Config) *MDSCluster {
	c := &MDSCluster{
		Maps:       reshard.NewCoordinator(len(hosts)),
		cfg:        cfg.COFS,
		full:       cfg,
		net:        net,
		lockShards: len(hosts),
		hostPrefix: "cofs-mds",
	}
	if c.lockShards < 1 {
		c.lockShards = 1
	}
	if len(hosts) > 1 && !cfg.COFS.DisableTxnLocks {
		c.rowLocks = lock.NewRowLocks(net.Env())
		c.rowLocks.ExclusiveOnly = cfg.COFS.ExclusiveRowLocks
	}
	for i, h := range hosts {
		c.shards = append(c.shards, newShard(net, h, cfg, c, i))
	}
	for _, s := range c.shards {
		s.peers = make([]*rpc.Conn, len(c.shards))
		for j, t := range c.shards {
			if t != s {
				s.peers[j] = rpc.Dial(net, s.host, t.host, cfg.COFS.RPCBatch)
			}
		}
	}
	return c
}

// Shards returns the shard services in shard-id order (tooling/tests).
// After a shrink the slice still includes the drained, empty shards;
// ServingShards reports the count the map actually routes over.
func (c *MDSCluster) Shards() []*Service { return c.shards }

// ServingShards is the shard count of the current map: the target
// count mid-migration, the settled count otherwise. It is what "how
// many shards does this plane have" means to an operator, and differs
// from len(Shards()) only after a shrink (drained services linger,
// empty and unrouted).
func (c *MDSCluster) ServingShards() int { return c.Maps.Current().Target() }

// Of returns the shard owning ino at the current epoch.
func (c *MDSCluster) Of(ino vfs.Ino) int { return c.Maps.Current().Of(uint64(ino)) }

// dirTarget returns the shard a new directory (parent, name) allocates
// from, by the current map's target count — during a migration new
// directories place straight into the post-migration layout, so nothing
// created mid-flight ever needs to move.
func (c *MDSCluster) dirTarget(parent vfs.Ino, name string) int {
	return ShardMap{Shards: c.Maps.Current().Target()}.DirTarget(parent, name)
}

// shard returns the shard owning ino at the current epoch.
func (c *MDSCluster) shard(ino vfs.Ino) *Service { return c.shards[c.Of(ino)] }

// ReshardStats returns the plane's resharding counters.
func (c *MDSCluster) ReshardStats() reshard.Stats { return c.rstats }

// readStandby returns the standby plane that offloads this primary's
// reads, nil when none was deployed with COFSParams.StandbyReads. The
// pointer is returned even while serving is paused (mid-reshard):
// dialing decisions key on its existence, the per-read gate re-checks
// paused on the standby host (standby.go).
func (c *MDSCluster) readStandby() *Standby {
	for _, sb := range c.standbys {
		if sb.serveReads {
			return sb
		}
	}
	return nil
}

// StandbyReadStats sums the standby-served read and fallback counters
// across the plane's standbys, including planes this one replaced at
// Promote.
func (c *MDSCluster) StandbyReadStats() (reads, fallbacks int64) {
	reads, fallbacks = c.priorStandbyReads, c.priorStandbyFallbacks
	for _, sb := range c.standbys {
		reads += sb.Reads
		fallbacks += sb.Fallbacks
	}
	return reads, fallbacks
}

// StoreName reports which store backend the plane's shards deploy
// (tools print it in their counters header).
func (c *MDSCluster) StoreName() string { return c.shards[0].DB.EngineName() }

// ---- routed operations (the client-facing surface used by FS) ----
//
// Every operation travels the calling session's RPC channel to its
// coordinator shard (see internal/rpc and session.go): the transport
// charges the wire and dispatch costs, the shard executes the operation
// body and manages the session's cache leases. The shard is chosen by
// the session's map version; when that version raced a migration the
// shard redirects (ErrWrongEpoch) and routed refetches and retries —
// the misrouted round trip is the price of the race, one extra hop.

// routed runs op against the shard the session's map version assigns
// ino, refetching the map and retrying on a redirect. op returns the
// operation's error so routed can spot the redirect; results travel in
// the caller's closure. A session whose map version predates a shrink's
// retirement can name a shard that no longer exists — its channel was
// dropped with the shard — which is the same race as a redirect, paid
// the same way: refetch and re-route.
func (c *MDSCluster) routed(p *sim.Proc, sess *Session, ino vfs.Ino, op func(s *Service) error) {
	for {
		si := sess.mapView(c).Of(uint64(ino))
		if si >= len(c.shards) || si >= len(sess.conns) {
			sess.refetchMap(p, c)
			continue
		}
		if op(c.shards[si]) != ErrWrongEpoch {
			return
		}
		sess.refetchMap(p, c)
	}
}

// Lookup resolves (parent, name); coordinated by the parent's shard —
// or served by its standby when one offloads reads and can prove the
// answer fresh (standby.go).
func (c *MDSCluster) Lookup(p *sim.Proc, sess *Session, parent vfs.Ino, name string) (attr vfs.Attr, err error) {
	ob := c.obsBegin(p, sess, "op.lookup", parent)
	defer c.obsEnd(p, ob)
	if sb := c.readStandby(); sb != nil {
		if attr, err, ok := sb.lookup(p, sess, parent, name); ok {
			return attr, err
		}
	}
	c.routed(p, sess, parent, func(s *Service) error {
		attr, err = s.Lookup(p, sess, parent, name)
		return err
	})
	return attr, err
}

// Getattr returns the attributes of id from its owning shard, or from
// the shard's standby when the replication cursor proves them fresh.
func (c *MDSCluster) Getattr(p *sim.Proc, sess *Session, id vfs.Ino) (attr vfs.Attr, err error) {
	ob := c.obsBegin(p, sess, "op.getattr", id)
	defer c.obsEnd(p, ob)
	if sb := c.readStandby(); sb != nil {
		if attr, err, ok := sb.getattr(p, sess, id); ok {
			return attr, err
		}
	}
	c.routed(p, sess, id, func(s *Service) error {
		attr, err = s.Getattr(p, sess, id)
		return err
	})
	return attr, err
}

// Setattr updates attributes of id on its owning shard.
func (c *MDSCluster) Setattr(p *sim.Proc, sess *Session, ctx vfs.Ctx, id vfs.Ino, set vfs.SetAttr) (attr vfs.Attr, err error) {
	ob := c.obsBegin(p, sess, "op.setattr", id)
	defer c.obsEnd(p, ob)
	c.routed(p, sess, id, func(s *Service) error {
		attr, err = s.Setattr(p, sess, ctx, id, set)
		return err
	})
	return attr, err
}

// Create allocates a new object under parent; coordinated by the
// parent's shard (which owns the new dentry).
func (c *MDSCluster) Create(p *sim.Proc, sess *Session, ctx vfs.Ctx, parent vfs.Ino, name string, t vfs.FileType, mode uint32, bucket, target string) (attr vfs.Attr, upath string, err error) {
	ob := c.obsBegin(p, sess, "op.create", parent)
	defer c.obsEnd(p, ob)
	c.routed(p, sess, parent, func(s *Service) error {
		attr, upath, err = s.Create(p, sess, ctx, parent, name, t, mode, bucket, target)
		return err
	})
	return attr, upath, err
}

// Readlink returns a symlink's target from its owning shard.
func (c *MDSCluster) Readlink(p *sim.Proc, sess *Session, id vfs.Ino) (tgt string, err error) {
	ob := c.obsBegin(p, sess, "op.readlink", id)
	defer c.obsEnd(p, ob)
	c.routed(p, sess, id, func(s *Service) error {
		tgt, err = s.Readlink(p, sess, id)
		return err
	})
	return tgt, err
}

// OpenInfo returns attributes and underlying mapping of a regular file.
func (c *MDSCluster) OpenInfo(p *sim.Proc, sess *Session, id vfs.Ino) (attr vfs.Attr, upath string, err error) {
	ob := c.obsBegin(p, sess, "op.open", id)
	defer c.obsEnd(p, ob)
	c.routed(p, sess, id, func(s *Service) error {
		attr, upath, err = s.OpenInfo(p, sess, id)
		return err
	})
	return attr, upath, err
}

// Remove unlinks (parent, name); coordinated by the parent's shard.
func (c *MDSCluster) Remove(p *sim.Proc, sess *Session, ctx vfs.Ctx, parent vfs.Ino, name string, rmdir bool) (upath string, id vfs.Ino, err error) {
	ob := c.obsBegin(p, sess, "op.remove", parent)
	defer c.obsEnd(p, ob)
	c.routed(p, sess, parent, func(s *Service) error {
		upath, id, err = s.Remove(p, sess, ctx, parent, name, rmdir)
		return err
	})
	return upath, id, err
}

// Rename moves (srcDir, srcName) to (dstDir, dstName); coordinated by
// the source directory's shard.
func (c *MDSCluster) Rename(p *sim.Proc, sess *Session, ctx vfs.Ctx, srcDir vfs.Ino, srcName string, dstDir vfs.Ino, dstName string) (upath string, id vfs.Ino, err error) {
	ob := c.obsBegin(p, sess, "op.rename", srcDir)
	defer c.obsEnd(p, ob)
	c.routed(p, sess, srcDir, func(s *Service) error {
		upath, id, err = s.Rename(p, sess, ctx, srcDir, srcName, dstDir, dstName)
		return err
	})
	return upath, id, err
}

// Link adds a hard link to id at (parent, name); coordinated by the
// parent's shard.
func (c *MDSCluster) Link(p *sim.Proc, sess *Session, ctx vfs.Ctx, id vfs.Ino, parent vfs.Ino, name string) (attr vfs.Attr, err error) {
	ob := c.obsBegin(p, sess, "op.link", parent)
	defer c.obsEnd(p, ob)
	c.routed(p, sess, parent, func(s *Service) error {
		attr, err = s.Link(p, sess, ctx, id, parent, name)
		return err
	})
	return attr, err
}

// ReaddirPlus lists dir with attributes; coordinated by dir's shard,
// or served whole from its standby when every row of the listing is
// provably covered by the replication cursor.
func (c *MDSCluster) ReaddirPlus(p *sim.Proc, sess *Session, ctx vfs.Ctx, dir vfs.Ino) (ents []vfs.DirEntry, attrs []vfs.Attr, err error) {
	ob := c.obsBegin(p, sess, "op.readdir", dir)
	defer c.obsEnd(p, ob)
	if sb := c.readStandby(); sb != nil {
		if ents, attrs, err, ok := sb.readdirPlus(p, sess, ctx, dir); ok {
			return ents, attrs, err
		}
	}
	c.routed(p, sess, dir, func(s *Service) error {
		ents, attrs, err = s.ReaddirPlus(p, sess, ctx, dir)
		return err
	})
	return ents, attrs, err
}

// Readdir lists dir (names and types only).
func (c *MDSCluster) Readdir(p *sim.Proc, sess *Session, ctx vfs.Ctx, dir vfs.Ino) ([]vfs.DirEntry, error) {
	ents, _, err := c.ReaddirPlus(p, sess, ctx, dir)
	return ents, err
}

// WriteBack records a writer's size/mtime at close on id's shard.
func (c *MDSCluster) WriteBack(p *sim.Proc, sess *Session, id vfs.Ino, size int64, mtime time.Duration) (err error) {
	ob := c.obsBegin(p, sess, "op.writeback", id)
	defer c.obsEnd(p, ob)
	c.routed(p, sess, id, func(s *Service) error {
		err = s.WriteBack(p, sess, id, size, mtime)
		return err
	})
	return err
}

// CountObjects returns (files, dirs) aggregated over every shard, one
// RPC per shard.
func (c *MDSCluster) CountObjects(p *sim.Proc, sess *Session) (int64, int64) {
	var files, dirs int64
	for _, s := range c.shards {
		f, d := s.CountObjects(p, sess)
		files += f
		dirs += d
	}
	return files, dirs
}

// Mapping returns the underlying path of a regular file (cofsctl).
func (c *MDSCluster) Mapping(id vfs.Ino) (string, bool) {
	return c.shard(id).mappings.Peek(id)
}

// EachMapping visits every (file id, underlying path) pair, shard by
// shard in deterministic order (tooling and tests).
func (c *MDSCluster) EachMapping(fn func(id vfs.Ino, upath string)) {
	for _, s := range c.shards {
		s.mappings.Each(fn)
	}
}

// ---- whole-plane lifecycle (crash, recovery, tooling aggregates) ----

// Crash crashes every shard's database (tables lost, flushed WAL kept).
func (c *MDSCluster) Crash() {
	for _, s := range c.shards {
		s.DB.Crash()
	}
}

// Recover replays every shard's flushed WAL. When the crash caught a
// migration mid-flight, the coordinator's epoch log still names every
// committed move, and the WAL-handoff protocol guarantees a durable
// copy of every group at the shard the log assigns it; recovery
// reconciles the replayed leftovers of half-applied batches and resumes
// the migration to completion (recoverReshard), so Crash/Recover is
// well-defined at any instant of a grow or shrink.
func (c *MDSCluster) Recover(p *sim.Proc) {
	for _, s := range c.shards {
		s.DB.Recover(p)
	}
	if c.Maps.Current().Migrating() {
		c.recoverReshard(p)
	}
}

// Checkpoint dumps every shard's tables and truncates its WAL.
func (c *MDSCluster) Checkpoint(p *sim.Proc) {
	for _, s := range c.shards {
		s.DB.Checkpoint(p)
	}
}

// AdoptIDCounter recomputes every shard's id allocator from its tables
// (after recovery or standby promotion).
func (c *MDSCluster) AdoptIDCounter() {
	for _, s := range c.shards {
		s.AdoptIDCounter()
	}
}

// Stats aggregates the per-shard service counters.
func (c *MDSCluster) Stats() ServiceStats {
	var out ServiceStats
	for _, s := range c.shards {
		out.Requests += s.Stats.Requests
		out.Creates += s.Stats.Creates
		out.Lookups += s.Stats.Lookups
		out.Getattrs += s.Stats.Getattrs
		out.Updates += s.Stats.Updates
		out.Removes += s.Stats.Removes
		out.PeerCalls += s.Stats.PeerCalls
		out.Revocations += s.Stats.Revocations
	}
	return out
}

// LockStats returns the plane's row-lock counters: locks taken, grants
// taken Shared, in-place Shared→Exclusive upgrades, acquisitions that
// had to wait, and the virtual time spent waiting (all zero on an
// unsharded plane or with DisableTxnLocks set).
func (c *MDSCluster) LockStats() lock.RowLockStats {
	if c.rowLocks == nil {
		return lock.RowLockStats{}
	}
	return c.rowLocks.Stats
}

// PeerTransportStats aggregates the shard-to-shard channel counters of
// the two-phase protocol across the plane, including the migration
// channels of any reshard.
func (c *MDSCluster) PeerTransportStats() rpc.ConnStats {
	out := c.priorPeer
	for _, s := range c.shards {
		for _, pc := range s.peers {
			if pc != nil {
				out.Add(pc.Stats)
			}
		}
	}
	for _, rc := range c.reshardConns {
		out.Add(rc.Stats)
	}
	return out
}

// WALLen reports the plane's owned log length (cofsctl): each shard's
// WAL net of migration bookkeeping, so a handed-off record counts
// exactly once at every instant of a reshard — staged imports belong to
// the source until their epoch installs, then to the target and no
// longer to the source (mdb.OwnedWALLen). Identical to the raw sum on
// a plane that never resharded.
func (c *MDSCluster) WALLen() int {
	n := 0
	for _, s := range c.shards {
		n += s.DB.OwnedWALLen()
	}
	return n
}

// Commits reports total durable commits across shards (cofsctl).
func (c *MDSCluster) Commits() int64 {
	var n int64
	for _, s := range c.shards {
		n += s.DB.Commits
	}
	return n
}

// ShardCounts returns the number of inode rows per shard (tooling and
// the balance property tests).
func (c *MDSCluster) ShardCounts() []int {
	out := make([]int, len(c.shards))
	for i, s := range c.shards {
		out[i] = s.inodes.Len()
	}
	return out
}

// CheckInvariants validates referential integrity of the whole plane:
// every row lives on the shard the map assigns it, every dentry points
// at a live inode (wherever it lives), dentry types mirror inode types,
// nlink matches the cluster-wide dentry references for non-directories,
// and every regular file has a mapping co-located with its inode. Tests
// call it after workloads, at drained instants (mid-migration a batch's
// rows are legitimately in flight between shards).
func (c *MDSCluster) CheckInvariants() error {
	type loc struct {
		row   inodeRow
		shard int
	}
	inodes := make(map[vfs.Ino]loc)
	var err error
	for si, s := range c.shards {
		si, s := si, s
		s.inodes.Each(func(id vfs.Ino, row inodeRow) {
			if c.Of(id) != si {
				err = fmt.Errorf("core: inode %d on shard %d, map says %d", id, si, c.Of(id))
			}
			if row.ID != id {
				err = fmt.Errorf("core: inode row %d disagrees with its key %d", row.ID, id)
			}
			inodes[id] = loc{row: row, shard: si}
		})
		s.mappings.Each(func(id vfs.Ino, upath string) {
			if c.Of(id) != si {
				err = fmt.Errorf("core: mapping for %d on shard %d, map says %d", id, si, c.Of(id))
			}
		})
	}
	if err != nil {
		return err
	}
	refs := make(map[vfs.Ino]int)
	dirRefs := make(map[vfs.Ino]int) // parent -> child-directory count
	for si, s := range c.shards {
		si := si
		s.dentries.Each(func(k dentryKey, de dentryRow) {
			if de.Parent != k.Parent || de.Name != k.Name {
				err = fmt.Errorf("core: dentry row %v disagrees with its key %v", de, k)
				return
			}
			if c.Of(k.Parent) != si {
				err = fmt.Errorf("core: dentry %d/%s on shard %d, map says %d", k.Parent, k.Name, si, c.Of(k.Parent))
				return
			}
			l, ok := inodes[de.Child]
			if !ok {
				err = fmt.Errorf("core: dentry %v/%s points at missing inode %d", k.Parent, k.Name, de.Child)
				return
			}
			if l.row.Type != de.Type {
				err = fmt.Errorf("core: dentry %v/%s type %v disagrees with inode type %v", k.Parent, k.Name, de.Type, l.row.Type)
				return
			}
			if l.row.Type != vfs.TypeDir {
				refs[de.Child]++
			} else {
				dirRefs[k.Parent]++
			}
		})
	}
	if err != nil {
		return err
	}
	ids := make([]vfs.Ino, 0, len(inodes))
	for id := range inodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		l := inodes[id]
		if l.row.Type == vfs.TypeDir {
			// A directory's nlink is itself + "." plus one ".." per
			// child directory.
			if want := 2 + dirRefs[id]; l.row.Nlink != want {
				return fmt.Errorf("core: directory %d nlink=%d, want %d (2 + %d subdirs)", id, l.row.Nlink, want, dirRefs[id])
			}
			continue
		}
		if refs[id] != l.row.Nlink {
			return fmt.Errorf("core: inode %d nlink=%d, %d dentries", id, l.row.Nlink, refs[id])
		}
		if l.row.Type == vfs.TypeRegular {
			if _, ok := c.shards[l.shard].mappings.Peek(id); !ok {
				return fmt.Errorf("core: regular file %d has no mapping", id)
			}
		}
	}
	return nil
}
