package core

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"cofs/internal/lock"
	"cofs/internal/netsim"
	"cofs/internal/params"
	"cofs/internal/rpc"
	"cofs/internal/sim"
	"cofs/internal/vfs"
)

// This file implements the sharded metadata service plane: the paper's
// future-work direction of distributing the metadata server itself
// (section V). An MDSCluster runs N independent metadata shards, each a
// *Service on its own simulated host with its own disk and Mnesia-style
// tables. Clients route every operation to a coordinator shard chosen by
// a deterministic shard map; operations whose rows span shards run an
// explicit two-phase protocol over simulated shard-to-shard RPCs (see
// twophase.go), so the virtual-time model keeps charging realistic
// latency for the distribution the single-service prototype avoided.

// ShardMap is the deterministic placement function of the metadata
// plane. Inode rows (and their mappings) live on the shard derived from
// the inode id; dentries live on the shard of their parent directory, so
// Lookup and Readdir are always coordinated by a single shard.
//
// Placement is strided: shard s owns every id with (id-1) mod N == s,
// and each shard allocates ids from its own stride. New regular files
// and symlinks draw their id from the parent directory's shard, so a
// create commits on one shard; new directories draw theirs from the
// shard hashed from (parent, name), which spreads independent directory
// subtrees — and the load of everything later created inside them —
// across the whole plane.
type ShardMap struct {
	// Shards is the shard count N. 0 and 1 both mean "unsharded".
	Shards int
}

// Of returns the shard owning an inode id. The same id maps to the same
// shard on every run and across restarts with an unchanged shard count.
func (m ShardMap) Of(ino vfs.Ino) int {
	if m.Shards <= 1 {
		return 0
	}
	return int((uint64(ino) - 1) % uint64(m.Shards))
}

// DirTarget returns the shard a new directory created as (parent, name)
// allocates its inode from. Hashing the birth name (rather than
// inheriting the parent's shard) is what keeps the map balanced: without
// it, every object would transitively collapse onto the root's shard.
func (m ShardMap) DirTarget(parent vfs.Ino, name string) int {
	if m.Shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(parent) >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(name))
	return int(mix64(h.Sum64()) % uint64(m.Shards))
}

// MDSCluster is the sharded COFS metadata service plane. It exposes the
// same operation surface the single Service used to, routing each call
// to its coordinator shard; a deployment with one shard is behaviourally
// and cost-identical to the paper's prototype.
type MDSCluster struct {
	// Map is the deterministic shard map.
	Map    ShardMap
	cfg    params.COFSParams
	shards []*Service
	// rowLocks is the plane's ordered row-lock table: cross-shard
	// mutations hold per-inode/per-dentry locks across their whole
	// validate→commit span (txnlock.go, docs/transactions.md). Nil on
	// unsharded planes — a single shard commits every mutation in one
	// serialized transaction — and when COFSParams.DisableTxnLocks
	// reverts to the unlocked protocol for regression replays.
	rowLocks *lock.RowLocks
	// priorPeer carries the peer-channel counters of a plane this one
	// replaced at failover, keeping the per-layer report cumulative
	// like the client-side counters.
	priorPeer rpc.ConnStats
}

// NewMDSCluster creates one metadata shard per host. The hosts must be
// on the deployment's network; each shard gets a freshly attached local
// disk named after its host, plus an RPC channel to every peer shard
// for the two-phase protocol traffic.
func NewMDSCluster(net *netsim.Net, hosts []*netsim.Host, cfg params.Config) *MDSCluster {
	c := &MDSCluster{Map: ShardMap{Shards: len(hosts)}, cfg: cfg.COFS}
	if len(hosts) > 1 && !cfg.COFS.DisableTxnLocks {
		c.rowLocks = lock.NewRowLocks(net.Env())
		c.rowLocks.ExclusiveOnly = cfg.COFS.ExclusiveRowLocks
	}
	for i, h := range hosts {
		c.shards = append(c.shards, newShard(net, h, cfg, c, i))
	}
	for _, s := range c.shards {
		s.peers = make([]*rpc.Conn, len(c.shards))
		for j, t := range c.shards {
			if t != s {
				s.peers[j] = rpc.Dial(net, s.host, t.host, cfg.COFS.RPCBatch)
			}
		}
	}
	return c
}

// Shards returns the shard services in shard-id order (tooling/tests).
func (c *MDSCluster) Shards() []*Service { return c.shards }

// shard returns the shard owning ino.
func (c *MDSCluster) shard(ino vfs.Ino) *Service { return c.shards[c.Map.Of(ino)] }

// ---- routed operations (the client-facing surface used by FS) ----
//
// Every operation travels the calling session's RPC channel to its
// coordinator shard (see internal/rpc and session.go): the transport
// charges the wire and dispatch costs, the shard executes the operation
// body and manages the session's cache leases.

// Lookup resolves (parent, name); coordinated by the parent's shard.
func (c *MDSCluster) Lookup(p *sim.Proc, sess *Session, parent vfs.Ino, name string) (vfs.Attr, error) {
	return c.shard(parent).Lookup(p, sess, parent, name)
}

// Getattr returns the attributes of id from its owning shard.
func (c *MDSCluster) Getattr(p *sim.Proc, sess *Session, id vfs.Ino) (vfs.Attr, error) {
	return c.shard(id).Getattr(p, sess, id)
}

// Setattr updates attributes of id on its owning shard.
func (c *MDSCluster) Setattr(p *sim.Proc, sess *Session, ctx vfs.Ctx, id vfs.Ino, set vfs.SetAttr) (vfs.Attr, error) {
	return c.shard(id).Setattr(p, sess, ctx, id, set)
}

// Create allocates a new object under parent; coordinated by the
// parent's shard (which owns the new dentry).
func (c *MDSCluster) Create(p *sim.Proc, sess *Session, ctx vfs.Ctx, parent vfs.Ino, name string, t vfs.FileType, mode uint32, bucket, target string) (vfs.Attr, string, error) {
	return c.shard(parent).Create(p, sess, ctx, parent, name, t, mode, bucket, target)
}

// Readlink returns a symlink's target from its owning shard.
func (c *MDSCluster) Readlink(p *sim.Proc, sess *Session, id vfs.Ino) (string, error) {
	return c.shard(id).Readlink(p, sess, id)
}

// OpenInfo returns attributes and underlying mapping of a regular file.
func (c *MDSCluster) OpenInfo(p *sim.Proc, sess *Session, id vfs.Ino) (vfs.Attr, string, error) {
	return c.shard(id).OpenInfo(p, sess, id)
}

// Remove unlinks (parent, name); coordinated by the parent's shard.
func (c *MDSCluster) Remove(p *sim.Proc, sess *Session, ctx vfs.Ctx, parent vfs.Ino, name string, rmdir bool) (string, vfs.Ino, error) {
	return c.shard(parent).Remove(p, sess, ctx, parent, name, rmdir)
}

// Rename moves (srcDir, srcName) to (dstDir, dstName); coordinated by
// the source directory's shard.
func (c *MDSCluster) Rename(p *sim.Proc, sess *Session, ctx vfs.Ctx, srcDir vfs.Ino, srcName string, dstDir vfs.Ino, dstName string) (string, vfs.Ino, error) {
	return c.shard(srcDir).Rename(p, sess, ctx, srcDir, srcName, dstDir, dstName)
}

// Link adds a hard link to id at (parent, name); coordinated by the
// parent's shard.
func (c *MDSCluster) Link(p *sim.Proc, sess *Session, ctx vfs.Ctx, id vfs.Ino, parent vfs.Ino, name string) (vfs.Attr, error) {
	return c.shard(parent).Link(p, sess, ctx, id, parent, name)
}

// ReaddirPlus lists dir with attributes; coordinated by dir's shard.
func (c *MDSCluster) ReaddirPlus(p *sim.Proc, sess *Session, ctx vfs.Ctx, dir vfs.Ino) ([]vfs.DirEntry, []vfs.Attr, error) {
	return c.shard(dir).ReaddirPlus(p, sess, ctx, dir)
}

// Readdir lists dir (names and types only).
func (c *MDSCluster) Readdir(p *sim.Proc, sess *Session, ctx vfs.Ctx, dir vfs.Ino) ([]vfs.DirEntry, error) {
	ents, _, err := c.ReaddirPlus(p, sess, ctx, dir)
	return ents, err
}

// WriteBack records a writer's size/mtime at close on id's shard.
func (c *MDSCluster) WriteBack(p *sim.Proc, sess *Session, id vfs.Ino, size int64, mtime time.Duration) error {
	return c.shard(id).WriteBack(p, sess, id, size, mtime)
}

// CountObjects returns (files, dirs) aggregated over every shard, one
// RPC per shard.
func (c *MDSCluster) CountObjects(p *sim.Proc, sess *Session) (int64, int64) {
	var files, dirs int64
	for _, s := range c.shards {
		f, d := s.CountObjects(p, sess)
		files += f
		dirs += d
	}
	return files, dirs
}

// Mapping returns the underlying path of a regular file (cofsctl).
func (c *MDSCluster) Mapping(id vfs.Ino) (string, bool) {
	return c.shard(id).mappings.Peek(id)
}

// EachMapping visits every (file id, underlying path) pair, shard by
// shard in deterministic order (tooling and tests).
func (c *MDSCluster) EachMapping(fn func(id vfs.Ino, upath string)) {
	for _, s := range c.shards {
		s.mappings.Each(fn)
	}
}

// ---- whole-plane lifecycle (crash, recovery, tooling aggregates) ----

// Crash crashes every shard's database (tables lost, flushed WAL kept).
func (c *MDSCluster) Crash() {
	for _, s := range c.shards {
		s.DB.Crash()
	}
}

// Recover replays every shard's flushed WAL.
func (c *MDSCluster) Recover(p *sim.Proc) {
	for _, s := range c.shards {
		s.DB.Recover(p)
	}
}

// Checkpoint dumps every shard's tables and truncates its WAL.
func (c *MDSCluster) Checkpoint(p *sim.Proc) {
	for _, s := range c.shards {
		s.DB.Checkpoint(p)
	}
}

// AdoptIDCounter recomputes every shard's id allocator from its tables
// (after recovery or standby promotion).
func (c *MDSCluster) AdoptIDCounter() {
	for _, s := range c.shards {
		s.AdoptIDCounter()
	}
}

// Stats aggregates the per-shard service counters.
func (c *MDSCluster) Stats() ServiceStats {
	var out ServiceStats
	for _, s := range c.shards {
		out.Requests += s.Stats.Requests
		out.Creates += s.Stats.Creates
		out.Lookups += s.Stats.Lookups
		out.Getattrs += s.Stats.Getattrs
		out.Updates += s.Stats.Updates
		out.Removes += s.Stats.Removes
		out.PeerCalls += s.Stats.PeerCalls
		out.Revocations += s.Stats.Revocations
	}
	return out
}

// LockStats returns the plane's row-lock counters: locks taken, grants
// taken Shared, in-place Shared→Exclusive upgrades, acquisitions that
// had to wait, and the virtual time spent waiting (all zero on an
// unsharded plane or with DisableTxnLocks set).
func (c *MDSCluster) LockStats() lock.RowLockStats {
	if c.rowLocks == nil {
		return lock.RowLockStats{}
	}
	return c.rowLocks.Stats
}

// PeerTransportStats aggregates the shard-to-shard channel counters of
// the two-phase protocol across the plane.
func (c *MDSCluster) PeerTransportStats() rpc.ConnStats {
	out := c.priorPeer
	for _, s := range c.shards {
		for _, pc := range s.peers {
			if pc != nil {
				out.Add(pc.Stats)
			}
		}
	}
	return out
}

// WALLen reports the total log length across shards (cofsctl).
func (c *MDSCluster) WALLen() int {
	n := 0
	for _, s := range c.shards {
		n += s.DB.WALLen()
	}
	return n
}

// Commits reports total durable commits across shards (cofsctl).
func (c *MDSCluster) Commits() int64 {
	var n int64
	for _, s := range c.shards {
		n += s.DB.Commits
	}
	return n
}

// ShardCounts returns the number of inode rows per shard (tooling and
// the balance property tests).
func (c *MDSCluster) ShardCounts() []int {
	out := make([]int, len(c.shards))
	for i, s := range c.shards {
		out[i] = s.inodes.Len()
	}
	return out
}

// CheckInvariants validates referential integrity of the whole plane:
// every row lives on the shard the map assigns it, every dentry points
// at a live inode (wherever it lives), dentry types mirror inode types,
// nlink matches the cluster-wide dentry references for non-directories,
// and every regular file has a mapping co-located with its inode. Tests
// call it after workloads.
func (c *MDSCluster) CheckInvariants() error {
	type loc struct {
		row   inodeRow
		shard int
	}
	inodes := make(map[vfs.Ino]loc)
	var err error
	for si, s := range c.shards {
		si, s := si, s
		s.inodes.Each(func(id vfs.Ino, row inodeRow) {
			if c.Map.Of(id) != si {
				err = fmt.Errorf("core: inode %d on shard %d, map says %d", id, si, c.Map.Of(id))
			}
			if row.ID != id {
				err = fmt.Errorf("core: inode row %d disagrees with its key %d", row.ID, id)
			}
			inodes[id] = loc{row: row, shard: si}
		})
		s.mappings.Each(func(id vfs.Ino, upath string) {
			if c.Map.Of(id) != si {
				err = fmt.Errorf("core: mapping for %d on shard %d, map says %d", id, si, c.Map.Of(id))
			}
		})
	}
	if err != nil {
		return err
	}
	refs := make(map[vfs.Ino]int)
	dirRefs := make(map[vfs.Ino]int) // parent -> child-directory count
	for si, s := range c.shards {
		si := si
		s.dentries.Each(func(k dentryKey, de dentryRow) {
			if de.Parent != k.Parent || de.Name != k.Name {
				err = fmt.Errorf("core: dentry row %v disagrees with its key %v", de, k)
				return
			}
			if c.Map.Of(k.Parent) != si {
				err = fmt.Errorf("core: dentry %d/%s on shard %d, map says %d", k.Parent, k.Name, si, c.Map.Of(k.Parent))
				return
			}
			l, ok := inodes[de.Child]
			if !ok {
				err = fmt.Errorf("core: dentry %v/%s points at missing inode %d", k.Parent, k.Name, de.Child)
				return
			}
			if l.row.Type != de.Type {
				err = fmt.Errorf("core: dentry %v/%s type %v disagrees with inode type %v", k.Parent, k.Name, de.Type, l.row.Type)
				return
			}
			if l.row.Type != vfs.TypeDir {
				refs[de.Child]++
			} else {
				dirRefs[k.Parent]++
			}
		})
	}
	if err != nil {
		return err
	}
	ids := make([]vfs.Ino, 0, len(inodes))
	for id := range inodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		l := inodes[id]
		if l.row.Type == vfs.TypeDir {
			// A directory's nlink is itself + "." plus one ".." per
			// child directory.
			if want := 2 + dirRefs[id]; l.row.Nlink != want {
				return fmt.Errorf("core: directory %d nlink=%d, want %d (2 + %d subdirs)", id, l.row.Nlink, want, dirRefs[id])
			}
			continue
		}
		if refs[id] != l.row.Nlink {
			return fmt.Errorf("core: inode %d nlink=%d, %d dentries", id, l.row.Nlink, refs[id])
		}
		if l.row.Type == vfs.TypeRegular {
			if _, ok := c.shards[l.shard].mappings.Peek(id); !ok {
				return fmt.Errorf("core: regular file %d has no mapping", id)
			}
		}
	}
	return nil
}
