// Package netsim models the cluster interconnect: hosts with NICs,
// switches, shared uplinks, and a synchronous RPC primitive. Two
// topologies mirror the paper's testbeds: a flat blade center with
// external file servers (sections II-A, IV) and the hierarchical 64-node
// extension of Fig. 6, where some blades cross several switches to reach
// the servers.
package netsim

import (
	"fmt"
	"slices"
	"time"

	"cofs/internal/params"
	"cofs/internal/sim"
)

// Link is a shared, bidirectional network segment (a NIC or a trunk).
// Transfers serialize on the link resource for their transmission time.
type Link struct {
	ID        int
	Name      string
	Bandwidth float64 // bytes per second
	res       *sim.Resource
}

// Host is a machine on the network: compute node, file server or the COFS
// metadata service node.
type Host struct {
	ID   int
	Name string
	// CPU models the host's processors (capacity = cores); RPC handlers
	// and local work acquire it.
	CPU *sim.Resource
	nic *Link
	// switchID is the blade-center switch this host hangs off.
	switchID int
}

// Net is the interconnect: hosts, links and routes.
type Net struct {
	env   *sim.Env
	p     params.NetworkParams
	hosts []*Host
	links []*Link
	// uplinks[a][b] is the trunk chain between switch a and switch b
	// (nil or empty when directly connected / same switch).
	uplinks map[[2]int][]*Link
	// routes memoizes route computations per directed host pair; every
	// Transfer/RTT used to rebuild and re-sort the link slice. Keyed by
	// host pointers, not IDs: ReleaseHost makes IDs reusable. Cleared
	// wholesale whenever topology changes (AddHost/Connect/ReleaseHost).
	routes map[[2]*Host]routeInfo

	Messages int64
	Bytes    int64
}

// routeInfo is a cached route: the shared links in global acquisition
// order (by link ID, the order Transfer locks them in), the hop count
// for latency, and the bottleneck bandwidth.
type routeInfo struct {
	ordered []*Link
	hops    int
	minBW   float64
}

// New creates an empty network.
func New(env *sim.Env, p params.NetworkParams) *Net {
	return &Net{
		env:     env,
		p:       p,
		uplinks: make(map[[2]int][]*Link),
		routes:  make(map[[2]*Host]routeInfo),
	}
}

// Env returns the simulation environment.
func (n *Net) Env() *sim.Env { return n.env }

// Params returns the network parameters.
func (n *Net) Params() params.NetworkParams { return n.p }

func (n *Net) newLink(name string, bw float64) *Link {
	l := &Link{ID: len(n.links), Name: name, Bandwidth: bw, res: sim.NewResource(n.env, "link:"+name, 1)}
	n.links = append(n.links, l)
	return l
}

// AddHost creates a host with cores CPUs attached to the given switch.
func (n *Net) AddHost(name string, cores, switchID int) *Host {
	h := &Host{
		ID:       len(n.hosts),
		Name:     name,
		CPU:      sim.NewResource(n.env, "cpu:"+name, cores),
		nic:      n.newLink("nic:"+name, n.p.EdgeBandwidth),
		switchID: switchID,
	}
	n.hosts = append(n.hosts, h)
	clear(n.routes)
	return h
}

// Connect installs a chain of hops trunk links between two switches. Hops
// is the number of intermediate links (each adds latency and shares
// uplink bandwidth).
func (n *Net) Connect(switchA, switchB, hops int) {
	if switchA == switchB {
		return
	}
	key := switchKey(switchA, switchB)
	var chain []*Link
	for i := 0; i < hops; i++ {
		chain = append(chain, n.newLink(fmt.Sprintf("trunk:%d-%d.%d", switchA, switchB, i), n.p.UplinkBandwidth))
	}
	n.uplinks[key] = chain
	clear(n.routes)
}

func switchKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// route returns the memoized route from a to b: links pre-sorted into
// acquisition order, hop count, and bottleneck bandwidth. The first call
// per host pair computes and caches; topology changes clear the cache.
func (n *Net) route(a, b *Host) routeInfo {
	if a == b {
		return routeInfo{}
	}
	key := [2]*Host{a, b}
	if ri, ok := n.routes[key]; ok {
		return ri
	}
	links := []*Link{a.nic, b.nic}
	hops := 2 // host->switch, switch->host
	if a.switchID != b.switchID {
		chain, ok := n.uplinks[switchKey(a.switchID, b.switchID)]
		if !ok {
			panic(fmt.Sprintf("netsim: no route between switch %d and %d", a.switchID, b.switchID))
		}
		links = append(links, chain...)
		hops += len(chain)
	}
	// Global link-ID order keeps concurrent transfers deadlock-free;
	// sorting once here is what lets Transfer skip its per-call copy+sort.
	slices.SortFunc(links, func(x, y *Link) int { return x.ID - y.ID })
	minBW := links[0].Bandwidth
	for _, l := range links {
		if l.Bandwidth < minBW {
			minBW = l.Bandwidth
		}
	}
	ri := routeInfo{ordered: links, hops: hops, minBW: minBW}
	n.routes[key] = ri
	return ri
}

// Transfer moves bytes from a to b, charging propagation latency per hop
// and serialization on every shared link along the route. Links are held
// concurrently for the duration of the bottleneck transmission,
// approximating a pipelined (cut-through) transfer; acquisition follows a
// global order to stay deadlock-free.
func (n *Net) Transfer(p *sim.Proc, a, b *Host, bytes int64) {
	n.Messages++
	n.Bytes += bytes
	if a == b {
		// Loopback: no network involvement.
		return
	}
	ri := n.route(a, b)
	size := bytes + n.p.RPCOverheadBytes
	tx := time.Duration(float64(size) / ri.minBW * float64(time.Second))

	for _, l := range ri.ordered {
		l.res.Acquire(p)
	}
	// Links are occupied for the serialization time only; propagation
	// and switching latency is charged after they are released, so a
	// small message does not block a NIC for its wire latency.
	p.Sleep(tx)
	for i := len(ri.ordered) - 1; i >= 0; i-- {
		ri.ordered[i].res.Release(p)
	}
	p.Sleep(time.Duration(ri.hops) * n.p.HopLatency)
}

// Call performs a synchronous RPC from client to server: request
// transfer, handler execution on one of the server's CPUs, response
// transfer. The handler runs in the caller's process but is charged to
// (and queues on) the server's CPU resource. It returns the handler's
// result.
func Call[T any](p *sim.Proc, n *Net, client, server *Host, reqBytes, respBytes int64, handler func(p *sim.Proc) T) T {
	n.Transfer(p, client, server, reqBytes)
	server.CPU.Acquire(p)
	res := handler(p)
	server.CPU.Release(p)
	n.Transfer(p, server, client, respBytes)
	return res
}

// CallDyn is Call with the response size computed from the handler's
// result — for responses whose payload depends on served data, such as
// directory listings.
func CallDyn[T any](p *sim.Proc, n *Net, client, server *Host, reqBytes int64, handler func(p *sim.Proc) T, respBytes func(T) int64) T {
	n.Transfer(p, client, server, reqBytes)
	server.CPU.Acquire(p)
	res := handler(p)
	server.CPU.Release(p)
	n.Transfer(p, server, client, respBytes(res))
	return res
}

// OneWay sends a message and charges handler time on the destination CPU
// without a response transfer (used for asynchronous notifications).
func OneWay(p *sim.Proc, n *Net, from, to *Host, bytes int64, handler func(p *sim.Proc)) {
	n.Transfer(p, from, to, bytes)
	to.CPU.Acquire(p)
	handler(p)
	to.CPU.Release(p)
}

// RTT returns the baseline round-trip latency between two hosts for an
// empty payload, useful for tests and sanity checks.
func (n *Net) RTT(a, b *Host) time.Duration {
	if a == b {
		return 0
	}
	oneWay := time.Duration(n.route(a, b).hops)*n.p.HopLatency +
		time.Duration(float64(n.p.RPCOverheadBytes)/n.p.EdgeBandwidth*float64(time.Second))
	return 2 * oneWay
}

// Hosts returns all hosts in creation order.
func (n *Net) Hosts() []*Host { return n.hosts }

// ReleaseHost returns a host to the testbed: it no longer appears in
// Hosts(). The Host object and its NIC stay valid, so references held
// by in-flight transfers drain normally; releasing is the lifecycle
// bookkeeping of shard retirement, not a teardown.
func (n *Net) ReleaseHost(h *Host) {
	for i, x := range n.hosts {
		if x == h {
			n.hosts = append(n.hosts[:i], n.hosts[i+1:]...)
			clear(n.routes)
			return
		}
	}
}
