package netsim

import (
	"testing"
	"time"

	"cofs/internal/params"
	"cofs/internal/sim"
)

func testNet(env *sim.Env) *Net {
	p := params.NetworkParams{
		HopLatency:       50 * time.Microsecond,
		EdgeBandwidth:    100e6,
		UplinkBandwidth:  100e6,
		RPCOverheadBytes: 0,
	}
	return New(env, p)
}

func TestTransferLatency(t *testing.T) {
	env := sim.NewEnv(1)
	n := testNet(env)
	a := n.AddHost("a", 2, 0)
	b := n.AddHost("b", 2, 0)
	var took time.Duration
	env.Spawn("x", func(p *sim.Proc) {
		start := p.Now()
		n.Transfer(p, a, b, 0)
		took = p.Now() - start
	})
	env.MustRun()
	if took != 100*time.Microsecond { // 2 hops * 50us
		t.Fatalf("latency %v, want 100us", took)
	}
}

func TestTransferBandwidth(t *testing.T) {
	env := sim.NewEnv(1)
	n := testNet(env)
	a := n.AddHost("a", 2, 0)
	b := n.AddHost("b", 2, 0)
	var took time.Duration
	env.Spawn("x", func(p *sim.Proc) {
		start := p.Now()
		n.Transfer(p, a, b, 100<<20) // 100 MB at 100 MB/s
		took = p.Now() - start
	})
	env.MustRun()
	want := time.Duration(float64(100<<20) / 100e6 * float64(time.Second))
	if took < want || took > want+time.Millisecond {
		t.Fatalf("transfer %v, want ~%v", took, want)
	}
}

func TestLoopbackIsFree(t *testing.T) {
	env := sim.NewEnv(1)
	n := testNet(env)
	a := n.AddHost("a", 2, 0)
	env.Spawn("x", func(p *sim.Proc) {
		n.Transfer(p, a, a, 1<<30)
		if p.Now() != 0 {
			t.Errorf("loopback took %v", p.Now())
		}
	})
	env.MustRun()
}

func TestNICContention(t *testing.T) {
	// Two clients sending to one server serialize on the server NIC.
	env := sim.NewEnv(1)
	n := testNet(env)
	srv := n.AddHost("srv", 2, 0)
	c1 := n.AddHost("c1", 2, 0)
	c2 := n.AddHost("c2", 2, 0)
	for _, c := range []*Host{c1, c2} {
		client := c
		env.Spawn("send", func(p *sim.Proc) {
			n.Transfer(p, client, srv, 50<<20) // 0.5 s each
		})
	}
	env.MustRun()
	// Serialized: ~1.05s; parallel would be ~0.53s.
	if env.Now() < time.Second {
		t.Fatalf("end=%v, want >= 1s (NIC serialization)", env.Now())
	}
}

func TestHierarchicalRouteLatency(t *testing.T) {
	env := sim.NewEnv(1)
	n := testNet(env)
	a := n.AddHost("a", 2, 0)
	b := n.AddHost("b", 2, 3)
	n.Connect(0, 3, 2) // two trunk hops between the switches
	var flatRTT, farRTT time.Duration
	c := n.AddHost("c", 2, 0)
	env.Spawn("x", func(p *sim.Proc) {
		start := p.Now()
		n.Transfer(p, a, c, 0)
		flatRTT = p.Now() - start
		start = p.Now()
		n.Transfer(p, a, b, 0)
		farRTT = p.Now() - start
	})
	env.MustRun()
	if farRTT <= flatRTT {
		t.Fatalf("cross-switch %v should exceed same-switch %v", farRTT, flatRTT)
	}
	if farRTT != 200*time.Microsecond { // 4 hops
		t.Fatalf("cross-switch latency %v, want 200us", farRTT)
	}
}

func TestMissingRoutePanics(t *testing.T) {
	env := sim.NewEnv(1)
	n := testNet(env)
	a := n.AddHost("a", 2, 0)
	b := n.AddHost("b", 2, 9)
	panicked := false
	env.Spawn("x", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		n.Transfer(p, a, b, 0)
	})
	env.MustRun()
	if !panicked {
		t.Fatal("expected panic for missing route")
	}
}

func TestCallChargesServerCPU(t *testing.T) {
	env := sim.NewEnv(1)
	n := testNet(env)
	srv := n.AddHost("srv", 1, 0) // single CPU: handlers serialize
	c1 := n.AddHost("c1", 2, 0)
	c2 := n.AddHost("c2", 2, 0)
	results := 0
	for _, c := range []*Host{c1, c2} {
		client := c
		env.Spawn("rpc", func(p *sim.Proc) {
			v := Call(p, n, client, srv, 128, 128, func(p *sim.Proc) int {
				p.Sleep(10 * time.Millisecond)
				return 7
			})
			if v != 7 {
				t.Errorf("rpc result %d", v)
			}
			results++
		})
	}
	env.MustRun()
	if results != 2 {
		t.Fatalf("results=%d", results)
	}
	// Handlers serialized on 1 CPU: >= 20ms total.
	if env.Now() < 20*time.Millisecond {
		t.Fatalf("end=%v, want >= 20ms", env.Now())
	}
}

func TestRTTSymmetric(t *testing.T) {
	env := sim.NewEnv(1)
	n := testNet(env)
	a := n.AddHost("a", 2, 0)
	b := n.AddHost("b", 2, 0)
	if n.RTT(a, b) != n.RTT(b, a) {
		t.Fatal("RTT not symmetric")
	}
	if n.RTT(a, a) != 0 {
		t.Fatal("self RTT not zero")
	}
	if n.RTT(a, b) != 200*time.Microsecond {
		t.Fatalf("RTT=%v, want 200us", n.RTT(a, b))
	}
}

func TestMessageAccounting(t *testing.T) {
	env := sim.NewEnv(1)
	n := testNet(env)
	a := n.AddHost("a", 2, 0)
	b := n.AddHost("b", 2, 0)
	env.Spawn("x", func(p *sim.Proc) {
		n.Transfer(p, a, b, 1000)
		n.Transfer(p, b, a, 500)
	})
	env.MustRun()
	if n.Messages != 2 || n.Bytes != 1500 {
		t.Fatalf("messages=%d bytes=%d", n.Messages, n.Bytes)
	}
}

func TestDisjointPairsTransferInParallel(t *testing.T) {
	// Transfers between disjoint host pairs share no links and must
	// overlap fully in time.
	env := sim.NewEnv(1)
	n := testNet(env)
	a1, b1 := n.AddHost("a1", 2, 0), n.AddHost("b1", 2, 0)
	a2, b2 := n.AddHost("a2", 2, 0), n.AddHost("b2", 2, 0)
	for _, pair := range [][2]*Host{{a1, b1}, {a2, b2}} {
		src, dst := pair[0], pair[1]
		env.Spawn("x", func(p *sim.Proc) { n.Transfer(p, src, dst, 100<<20) })
	}
	env.MustRun()
	oneTransfer := time.Duration(float64(100<<20)/100e6*1e9) + 100*time.Microsecond
	if env.Now() > oneTransfer+time.Millisecond {
		t.Fatalf("disjoint transfers serialized: %v > %v", env.Now(), oneTransfer)
	}
}

func TestPropagationDoesNotOccupyLink(t *testing.T) {
	// Two small messages over the same link: serialization is a few
	// microseconds, so both must complete in ~one propagation delay,
	// not two.
	env := sim.NewEnv(1)
	n := testNet(env)
	a := n.AddHost("a", 2, 0)
	b := n.AddHost("b", 2, 0)
	for i := 0; i < 2; i++ {
		env.Spawn("msg", func(p *sim.Proc) { n.Transfer(p, a, b, 64) })
	}
	env.MustRun()
	if env.Now() > 150*time.Microsecond {
		t.Fatalf("small messages serialized on propagation: %v", env.Now())
	}
}

// TestCallDynChargesResponseBySize: a CallDyn whose computed response is
// large must take longer than one whose response is small, with the
// handler work identical.
func TestCallDynChargesResponseBySize(t *testing.T) {
	elapsed := func(respBytes int64) time.Duration {
		env := sim.NewEnv(1)
		net := New(env, params.Default().Network)
		a := net.AddHost("a", 2, 0)
		b := net.AddHost("b", 2, 0)
		var d time.Duration
		env.Spawn("call", func(p *sim.Proc) {
			start := p.Now()
			CallDyn(p, net, a, b, 64, func(p *sim.Proc) int64 {
				return respBytes
			}, func(n int64) int64 { return n })
			d = p.Now() - start
		})
		env.MustRun()
		return d
	}
	small := elapsed(128)
	big := elapsed(4 << 20)
	if big <= small {
		t.Fatalf("4MB response (%v) not slower than 128B (%v)", big, small)
	}
	// The difference must be roughly the serialization time of 4 MB at
	// edge bandwidth.
	want := time.Duration(float64(4<<20) / params.Default().Network.EdgeBandwidth * float64(time.Second))
	got := big - small
	if got < want/2 || got > want*2 {
		t.Errorf("payload cost %v, want within 2x of %v", got, want)
	}
}

// TestRouteCacheInvalidation pins the memoized-route contract: repeated
// transfers reuse one cached entry per directed host pair, and any
// topology mutation (AddHost / Connect / ReleaseHost) drops the cache so
// stale routes cannot survive a change.
func TestRouteCacheInvalidation(t *testing.T) {
	env := sim.NewEnv(1)
	n := testNet(env)
	a := n.AddHost("a", 2, 0)
	b := n.AddHost("b", 2, 3)
	n.Connect(0, 3, 1)
	env.Spawn("x", func(p *sim.Proc) {
		n.Transfer(p, a, b, 0)
		n.Transfer(p, a, b, 0)
	})
	env.MustRun()
	if len(n.routes) != 1 {
		t.Fatalf("route cache has %d entries after repeated a->b transfers, want 1", len(n.routes))
	}
	before := n.RTT(a, b) // also a->b: still the one entry
	if len(n.routes) != 1 {
		t.Fatalf("RTT added a cache entry: %d", len(n.routes))
	}

	c := n.AddHost("c", 2, 0)
	if len(n.routes) != 0 {
		t.Fatal("AddHost did not invalidate the route cache")
	}
	if got := n.RTT(a, b); got != before {
		t.Fatalf("recomputed RTT %v, want %v", got, before)
	}

	n.Connect(0, 7, 2)
	if len(n.routes) != 0 {
		t.Fatal("Connect did not invalidate the route cache")
	}

	n.RTT(a, c)
	n.ReleaseHost(c)
	if len(n.routes) != 0 {
		t.Fatal("ReleaseHost did not invalidate the route cache")
	}
}
