// Package cluster assembles the simulated testbed of the paper's section
// II-A: IBM JS20 blades (2 cores) behind a 1 Gb blade-center switch, two
// external file servers on 1 Gb links running the GPFS-like file system,
// and — for the 64-node experiment of Fig. 6 — additional blade centers
// reached across several switches.
package cluster

import (
	"fmt"

	"cofs/internal/netsim"
	"cofs/internal/params"
	"cofs/internal/pfs"
	"cofs/internal/sim"
	"cofs/internal/vfs"
)

// BladesPerCenter is how many blades one blade center holds before the
// testbed grows a new (hierarchically connected) center.
const BladesPerCenter = 14

// Testbed is a fully assembled simulated cluster with the parallel file
// system mounted (bare, no FUSE layer) on every node.
type Testbed struct {
	Env     *sim.Env
	Net     *netsim.Net
	Cfg     params.Config
	Nodes   []*netsim.Host
	Servers []*netsim.Host
	FS      *pfs.Server
	Clients []*pfs.Client
	Mounts  []*vfs.Mount
}

// New builds a testbed with the given number of compute nodes. Nodes
// beyond BladesPerCenter land in extra blade centers whose switches are
// chained back to the original center (center k pays k trunk hops), as in
// the paper's 64-node extension.
func New(seed int64, nodes int, cfg params.Config) *Testbed {
	if nodes < 1 {
		panic("cluster: need at least one node")
	}
	env := sim.NewEnv(seed)
	net := netsim.New(env, cfg.Network)
	tb := &Testbed{Env: env, Net: net, Cfg: cfg}

	for i := 0; i < cfg.PFS.Servers; i++ {
		// File servers: external Intel boxes; CPU capacity models the
		// RPC worker pool.
		tb.Servers = append(tb.Servers, net.AddHost(fmt.Sprintf("server%d", i), cfg.PFS.ServerWorkers, 0))
	}
	connected := map[int]bool{0: true}
	for i := 0; i < nodes; i++ {
		center := i / BladesPerCenter
		if !connected[center] {
			net.Connect(center, 0, center)
			connected[center] = true
		}
		tb.Nodes = append(tb.Nodes, net.AddHost(fmt.Sprintf("blade%02d", i), 2, center))
	}

	tb.FS = pfs.NewServer(net, tb.Servers, cfg)
	for i, h := range tb.Nodes {
		c := tb.FS.NewClient(h, i)
		tb.Clients = append(tb.Clients, c)
		// Bare mount: the GPFS-like client is an in-kernel file system,
		// no FUSE crossing costs.
		tb.Mounts = append(tb.Mounts, vfs.NewMount(c, params.FUSEParams{}))
	}
	return tb
}

// Run drains the simulation, panicking on deadlock (benchmark style).
func (tb *Testbed) Run() { tb.Env.MustRun() }

// AddServiceHosts provisions n dedicated service blades on the original
// blade-center switch (the paper attached its metadata service there;
// the sharded extension provisions one blade per metadata shard). Host
// names derive from prefix: the first host is prefix itself, so a
// single-shard deployment keeps the paper's "cofs-mds" naming, and
// extras are prefix1, prefix2, ...
func (tb *Testbed) AddServiceHosts(prefix string, n, workers int) []*netsim.Host {
	hosts := make([]*netsim.Host, n)
	for i := range hosts {
		name := prefix
		if i > 0 {
			name = fmt.Sprintf("%s%d", prefix, i)
		}
		hosts[i] = tb.Net.AddHost(name, workers, 0)
	}
	return hosts
}

// Ctx returns a caller context for the given node and process id.
func Ctx(node, pid int) vfs.Ctx {
	return vfs.Ctx{Node: node, PID: pid, UID: 1000, GID: 100}
}
