package cluster

import (
	"testing"

	"cofs/internal/params"
	"cofs/internal/sim"
	"cofs/internal/vfs"
)

func TestTestbedShape(t *testing.T) {
	tb := New(1, 8, params.Default())
	if len(tb.Nodes) != 8 || len(tb.Clients) != 8 || len(tb.Mounts) != 8 {
		t.Fatalf("node slices: %d/%d/%d", len(tb.Nodes), len(tb.Clients), len(tb.Mounts))
	}
	if len(tb.Servers) != params.Default().PFS.Servers {
		t.Fatalf("servers=%d", len(tb.Servers))
	}
}

func TestHierarchicalLatencyPenalty(t *testing.T) {
	// Nodes beyond one blade center pay trunk hops to reach the servers
	// (the Fig. 6 topology).
	tb := New(1, BladesPerCenter+2, params.Default())
	near := tb.Net.RTT(tb.Nodes[0], tb.Servers[0])
	far := tb.Net.RTT(tb.Nodes[BladesPerCenter+1], tb.Servers[0])
	if far <= near {
		t.Fatalf("far-blade RTT %v not above near-blade %v", far, near)
	}
}

func TestFlatWithinOneCenter(t *testing.T) {
	tb := New(1, BladesPerCenter, params.Default())
	a := tb.Net.RTT(tb.Nodes[0], tb.Servers[0])
	b := tb.Net.RTT(tb.Nodes[BladesPerCenter-1], tb.Servers[0])
	if a != b {
		t.Fatalf("same-center RTTs differ: %v vs %v", a, b)
	}
}

func TestMountsAreIndependentViews(t *testing.T) {
	tb := New(1, 2, params.Default())
	tb.Env.Spawn("t", func(p *sim.Proc) {
		f, err := tb.Mounts[0].Create(p, Ctx(0, 1), "/x", 0644)
		if err != nil {
			t.Error(err)
			return
		}
		f.Close(p)
		// Visible from the other node's mount (shared filesystem).
		if _, err := tb.Mounts[1].Stat(p, Ctx(1, 1), "/x"); err != nil {
			t.Errorf("cross-mount visibility: %v", err)
		}
	})
	tb.Run()
	_ = vfs.TypeRegular
}
