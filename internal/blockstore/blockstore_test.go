package blockstore

import (
	"testing"
	"time"

	"cofs/internal/disk"
	"cofs/internal/netsim"
	"cofs/internal/params"
	"cofs/internal/sim"
)

func rig(servers int) (*sim.Env, *netsim.Net, *Store, *netsim.Host) {
	env := sim.NewEnv(1)
	cfg := params.Default()
	net := netsim.New(env, cfg.Network)
	var hosts []*netsim.Host
	var disks []*disk.Disk
	for i := 0; i < servers; i++ {
		hosts = append(hosts, net.AddHost("srv", 8, 0))
		disks = append(disks, disk.New(env, "d", cfg.Disk))
	}
	client := net.AddHost("client", 2, 0)
	return env, net, New(net, hosts, disks, 1<<20), client
}

func TestStripesFor(t *testing.T) {
	_, _, s, _ := rig(2)
	st := s.StripesFor(7, 0, 4<<20)
	if len(st) != 4 {
		t.Fatalf("stripes=%d, want 4", len(st))
	}
	if st[0].Idx != 0 || st[3].Idx != 3 {
		t.Fatalf("indexes: %+v", st)
	}
	// Partial tail and offset straddling.
	st = s.StripesFor(7, 1<<19, 1<<20)
	if len(st) != 2 {
		t.Fatalf("straddling stripes=%d, want 2", len(st))
	}
	if got := s.StripesFor(7, 0, 0); got != nil {
		t.Fatalf("zero-length read yields %v", got)
	}
}

func TestRoundRobinDistribution(t *testing.T) {
	_, _, s, _ := rig(2)
	counts := map[int]int{}
	for _, st := range s.StripesFor(3, 0, 16<<20) {
		counts[s.serverOf(st)]++
	}
	if counts[0] != 8 || counts[1] != 8 {
		t.Fatalf("distribution %v, want 8/8", counts)
	}
}

func TestParallelServersFasterThanOne(t *testing.T) {
	elapsed := func(servers int) time.Duration {
		env, _, s, client := rig(servers)
		env.Spawn("xfer", func(p *sim.Proc) {
			stripes := s.StripesFor(1, 0, 32<<20)
			sizes := make([]int64, len(stripes))
			for i := range sizes {
				sizes[i] = 1 << 20
			}
			s.Write(p, client, stripes, sizes)
		})
		env.MustRun()
		return env.Now()
	}
	one, two := elapsed(1), elapsed(2)
	if two >= one {
		t.Fatalf("2 servers (%v) not faster than 1 (%v)", two, one)
	}
}

func TestByteAccounting(t *testing.T) {
	env, _, s, client := rig(2)
	env.Spawn("xfer", func(p *sim.Proc) {
		stripes := s.StripesFor(1, 0, 2<<20)
		sizes := []int64{1 << 20, 1 << 20}
		s.Write(p, client, stripes, sizes)
		s.Read(p, client, stripes[:1], sizes[:1])
	})
	env.MustRun()
	if s.BytesWritten != 2<<20 || s.BytesRead != 1<<20 {
		t.Fatalf("accounting: wrote %d read %d", s.BytesWritten, s.BytesRead)
	}
}

func TestSequentialStripesSequentialOnDisk(t *testing.T) {
	_, _, s, _ := rig(2)
	// Stripes 0 and 2 of one file land on server 0 at adjacent
	// positions, so streaming stays near-sequential per disk.
	a := s.diskPos(Stripe{Ino: 5, Idx: 0})
	b := s.diskPos(Stripe{Ino: 5, Idx: 2})
	if b-a != 2 {
		t.Fatalf("positions not adjacent-ish: %d, %d", a, b)
	}
	// Different files are far apart.
	c := s.diskPos(Stripe{Ino: 6, Idx: 0})
	if c-a < 1<<19 {
		t.Fatalf("files too close on disk: %d vs %d", a, c)
	}
}

func TestMismatchedSizesPanics(t *testing.T) {
	env, _, s, client := rig(1)
	panicked := false
	env.Spawn("bad", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		s.Write(p, client, s.StripesFor(1, 0, 2<<20), []int64{1})
	})
	env.MustRun()
	if !panicked {
		t.Fatal("expected panic on stripes/sizes mismatch")
	}
}
