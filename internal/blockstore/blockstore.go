// Package blockstore models the NSD-like striped data path of the
// GPFS-like file system: file contents are striped round-robin across the
// file servers' disks, and a single logical transfer fans out across
// servers in parallel — the source of the aggregate-bandwidth behaviour
// measured by the IOR experiments (Table I).
package blockstore

import (
	"cofs/internal/disk"
	"cofs/internal/netsim"
	"cofs/internal/sim"
)

// Store is the striped block store.
type Store struct {
	net        *netsim.Net
	servers    []*netsim.Host
	disks      []*disk.Disk
	stripeSize int64

	BytesRead    int64
	BytesWritten int64
}

// Stripe identifies one striping unit of one file.
type Stripe struct {
	Ino uint64
	Idx int64
}

// New creates a store over the given server hosts and their disks
// (parallel slices) with the given stripe size.
func New(net *netsim.Net, servers []*netsim.Host, disks []*disk.Disk, stripeSize int64) *Store {
	if len(servers) == 0 || len(servers) != len(disks) {
		panic("blockstore: servers and disks must be non-empty parallel slices")
	}
	if stripeSize <= 0 {
		panic("blockstore: stripe size must be positive")
	}
	return &Store{net: net, servers: servers, disks: disks, stripeSize: stripeSize}
}

// StripeSize returns the striping unit.
func (s *Store) StripeSize() int64 { return s.stripeSize }

// serverOf maps a stripe to its server index (round-robin per file with a
// per-file rotation so files start on different servers).
func (s *Store) serverOf(st Stripe) int {
	return int((int64(st.Ino) + st.Idx) % int64(len(s.servers)))
}

// diskPos gives the stripe a stable disk position so sequential stripes
// of one file are sequential on disk.
func (s *Store) diskPos(st Stripe) int64 {
	return int64(st.Ino)<<20 + st.Idx
}

// StripesFor returns the stripes covering [off, off+n) of file ino.
func (s *Store) StripesFor(ino uint64, off, n int64) []Stripe {
	if n <= 0 {
		return nil
	}
	first := off / s.stripeSize
	last := (off + n - 1) / s.stripeSize
	out := make([]Stripe, 0, last-first+1)
	for i := first; i <= last; i++ {
		out = append(out, Stripe{Ino: ino, Idx: i})
	}
	return out
}

// Read transfers the given stripes from their servers to the client,
// fanning out across servers in parallel. sizes[i] is the byte count for
// stripes[i] (the boundary stripes of a request may be partial).
func (s *Store) Read(p *sim.Proc, client *netsim.Host, stripes []Stripe, sizes []int64) {
	s.transfer(p, client, stripes, sizes, false)
}

// Write transfers the given stripes from the client to their servers.
func (s *Store) Write(p *sim.Proc, client *netsim.Host, stripes []Stripe, sizes []int64) {
	s.transfer(p, client, stripes, sizes, true)
}

func (s *Store) transfer(p *sim.Proc, client *netsim.Host, stripes []Stripe, sizes []int64, write bool) {
	if len(stripes) != len(sizes) {
		panic("blockstore: stripes/sizes length mismatch")
	}
	if len(stripes) == 0 {
		return
	}
	// Group stripes by server; each server's queue is drained by one
	// helper process so transfers to different servers overlap while
	// each disk stays serialized.
	type req struct {
		st   Stripe
		size int64
	}
	byServer := make(map[int][]req)
	order := []int{}
	for i, st := range stripes {
		sv := s.serverOf(st)
		if _, ok := byServer[sv]; !ok {
			order = append(order, sv)
		}
		byServer[sv] = append(byServer[sv], req{st: st, size: sizes[i]})
		if write {
			s.BytesWritten += sizes[i]
		} else {
			s.BytesRead += sizes[i]
		}
	}
	env := p.Env()
	wg := sim.NewWaitGroup(env)
	for _, sv := range order {
		server := sv
		reqs := byServer[sv]
		wg.Go("stripe-xfer", func(p *sim.Proc) {
			for _, r := range reqs {
				pos := s.diskPos(r.st)
				if write {
					s.net.Transfer(p, client, s.servers[server], r.size)
					s.disks[server].Write(p, pos, r.size)
				} else {
					s.disks[server].Read(p, pos, r.size)
					s.net.Transfer(p, s.servers[server], client, r.size)
				}
			}
		})
	}
	wg.Wait(p)
}
